/**
 * @file
 * Elastic repartitioning tests: option-validation rejection of
 * contradictory knob combinations, Reconfig::Off bit-identity to the
 * frozen-partition scheduler across the policy x drop x preemption x
 * fault grid (offline and online), online/offline bit-identity of
 * the BacklogSkew policy, determinism across reruns and prefill
 * thread counts, reconfiguration-event consistency (windows, epochs,
 * PE conservation, modeled penalty), the elastic-beats-static
 * guarantee on the shifting-load scenario, and timeline rendering of
 * reconfiguration windows (including mixed with fault overlays).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "sched/arrival_source.hh"
#include "sched/fault_model.hh"
#include "sched/herald_scheduler.hh"
#include "sched/online_scheduler.hh"
#include "sched/reconfig.hh"
#include "sched/reference_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using accel::Accelerator;
using dataflow::DataflowStyle;
using sched::ArrivalSource;
using sched::DropPolicy;
using sched::FaultTimeline;
using sched::HeraldScheduler;
using sched::OnlineOptions;
using sched::OnlineScheduler;
using sched::Policy;
using sched::Preemption;
using sched::Reconfig;
using sched::ReconfigEvent;
using sched::ReconfigOptions;
using sched::Schedule;
using sched::SchedulerOptions;
using workload::Workload;

class RepartitionTest : public ::testing::Test
{
  public:
    void SetUp() override { util::setVerbose(false); }

    Accelerator
    miniHda()
    {
        return Accelerator::makeHda(
            accel::edgeClass(),
            {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
            {512, 512}, {8.0, 8.0});
    }

    dnn::Model
    convNet()
    {
        dnn::Model m("ConvNet");
        m.addLayer(dnn::makeConv("c1", 64, 3, 58, 58, 3, 3));
        m.addLayer(dnn::makeConv("c2", 128, 64, 28, 28, 3, 3));
        m.addLayer(dnn::makeFullyConnected("fc", 10, 128));
        return m;
    }

    dnn::Model
    fcNet()
    {
        dnn::Model m("FcNet");
        m.addLayer(dnn::makeFullyConnected("f1", 1024, 1024));
        m.addLayer(dnn::makeFullyConnected("f2", 256, 1024));
        return m;
    }

    /**
     * Two streams whose load is front-loaded on one dataflow: the
     * dense conv stream backlogs its preferred sub-accelerator while
     * the other idles, which is exactly the frontier skew the
     * BacklogSkew policy migrates against.
     */
    ArrivalSource
    skewedSource()
    {
        ArrivalSource src;
        src.addStream(convNet(), 5e5, 4e6, 0.0, 10);
        src.addStream(fcNet(), 8e6, 9e6, 2e6, 3);
        return src;
    }

    /** A BacklogSkew policy tuned to fire on the mini scenario. */
    ReconfigOptions
    miniElastic()
    {
        ReconfigOptions r;
        r.policy = Reconfig::BacklogSkew;
        r.skewThresholdCycles = 1e6;
        r.migrationQuantumPes = 64;
        r.drainCycles = 1e4;
        r.perPeRewireCycles = 10.0;
        r.cooldownCycles = 1e5;
        return r;
    }

    /** Outage + throttle timeline sized for the mini HDA. */
    FaultTimeline
    miniFaults()
    {
        FaultTimeline tl(2);
        tl.addOutage(0, 2e6, 1e6);
        tl.addThrottle(1, 1e6, 4e6, 2.0);
        return tl;
    }

    cost::CostModel model;
};

// ---------------------------------------------------------------
// Option validation (satellite: contradictory combos rejected)
// ---------------------------------------------------------------

TEST_F(RepartitionTest, ValidationRejectsContradictoryKnobs)
{
    const Accelerator acc = miniHda();
    auto expect_rejected = [&](const ReconfigOptions &r) {
        SchedulerOptions opts;
        opts.reconfig = r;
        EXPECT_THROW(HeraldScheduler(model, opts),
                     std::runtime_error);
    };

    // An enabled policy with a zero migration quantum would plan
    // outages that migrate nothing.
    {
        ReconfigOptions r = miniElastic();
        r.migrationQuantumPes = 0;
        expect_rejected(r);
    }
    // Non-positive or non-finite skew thresholds can never fire (or
    // fire always).
    for (double bad : {0.0, -1.0, std::nan("")}) {
        ReconfigOptions r = miniElastic();
        r.skewThresholdCycles = bad;
        expect_rejected(r);
    }
    // Negative / non-finite penalty and cooldown knobs are rejected
    // even with the policy Off — they are nonsense, not tuning.
    {
        ReconfigOptions r;
        r.drainCycles = -1.0;
        expect_rejected(r);
    }
    {
        ReconfigOptions r;
        r.perPeRewireCycles = std::nan("");
        expect_rejected(r);
    }
    {
        ReconfigOptions r;
        r.cooldownCycles = -5.0;
        expect_rejected(r);
    }
    // The tuned policy itself is accepted.
    SchedulerOptions ok;
    ok.reconfig = miniElastic();
    EXPECT_NO_THROW(HeraldScheduler(model, ok));
}

TEST_F(RepartitionTest, OnlineRequiresRetainedSchedule)
{
    const Accelerator acc = miniHda();
    const std::vector<dnn::Model> models = {convNet()};
    // Migration re-keys live history; the online engine forbids
    // pairing it with the retire-as-you-go mode.
    OnlineOptions o;
    o.sched.postProcess = false;
    o.sched.reconfig = miniElastic();
    o.retainSchedule = false;
    EXPECT_THROW(OnlineScheduler(model, models, acc, o),
                 std::runtime_error);
    o.retainSchedule = true;
    EXPECT_NO_THROW(OnlineScheduler(model, models, acc, o));
}

TEST_F(RepartitionTest, ReferenceOracleRejectsElastic)
{
    const Accelerator acc = miniHda();
    Workload wl("ref");
    wl.addModel(convNet(), 1);
    SchedulerOptions opts;
    opts.reconfig = miniElastic();
    EXPECT_THROW(referenceSchedule(model, opts, wl, acc),
                 std::logic_error);
}

// ---------------------------------------------------------------
// Reconfig::Off bit-identity (the tentpole's non-regression bar)
// ---------------------------------------------------------------

TEST_F(RepartitionTest, OffBitIdenticalAcrossGrid)
{
    const Accelerator acc = miniHda();
    const Workload wl = skewedSource().materialize("off-grid");
    for (auto policy : {Policy::Fifo, Policy::Edf, Policy::Lst}) {
        for (auto drop : {DropPolicy::None,
                          DropPolicy::HopelessFrames,
                          DropPolicy::DoomedFrames}) {
            for (auto preempt :
                 {Preemption::Off, Preemption::AtLayerBoundary}) {
                for (bool with_faults : {false, true}) {
                    SCOPED_TRACE(testing::Message()
                                 << sched::toString(policy) << "/"
                                 << sched::toString(drop) << "/"
                                 << sched::toString(preempt)
                                 << " faults " << with_faults);
                    SchedulerOptions base;
                    base.policy = policy;
                    base.dropPolicy = drop;
                    base.preemption = preempt;
                    if (with_faults)
                        base.faults = miniFaults();
                    const Schedule plain =
                        HeraldScheduler(model, base).schedule(wl,
                                                              acc);

                    // Off with arbitrary (valid) knob values must be
                    // byte-for-byte today's scheduler — the knobs
                    // are dead state until a policy enables them.
                    SchedulerOptions off = base;
                    off.reconfig.policy = Reconfig::Off;
                    off.reconfig.skewThresholdCycles = 123.0;
                    off.reconfig.migrationQuantumPes = 64;
                    off.reconfig.drainCycles = 7.0;
                    off.reconfig.perPeRewireCycles = 3.0;
                    off.reconfig.cooldownCycles = 11.0;
                    const Schedule with_off =
                        HeraldScheduler(model, off).schedule(wl, acc);
                    EXPECT_TRUE(with_off.identicalTo(plain));
                    EXPECT_TRUE(with_off.reconfigEvents().empty());
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// Elastic online == offline, bit for bit
// ---------------------------------------------------------------

TEST_F(RepartitionTest, ElasticOnlineMatchesOffline)
{
    const Accelerator acc = miniHda();
    std::size_t total_migrations = 0;
    for (auto policy : {Policy::Fifo, Policy::Edf, Policy::Lst}) {
        for (auto drop : {DropPolicy::None,
                          DropPolicy::HopelessFrames,
                          DropPolicy::DoomedFrames}) {
            for (bool with_faults : {false, true}) {
                SCOPED_TRACE(testing::Message()
                             << sched::toString(policy) << "/"
                             << sched::toString(drop) << " faults "
                             << with_faults);
                SchedulerOptions sopts;
                sopts.policy = policy;
                sopts.dropPolicy = drop;
                sopts.postProcess = false;
                sopts.reconfig = miniElastic();
                if (with_faults)
                    sopts.faults = miniFaults();

                ArrivalSource src = skewedSource();
                const Workload wl =
                    src.materialize("elastic-oracle");
                const Schedule offline =
                    HeraldScheduler(model, sopts).schedule(wl, acc);

                OnlineOptions oopts;
                oopts.sched = sopts;
                oopts.retainSchedule = true;
                oopts.maintenancePeriod = 4;
                OnlineScheduler eng(model, src.models(), acc,
                                    oopts);
                src.reset();
                while (!src.exhausted()) {
                    const ArrivalSource::Frame f = src.next();
                    eng.submit(f.streamIdx, f.arrivalCycle,
                               f.deadlineCycle);
                }
                eng.drain();
                const Schedule &online = eng.schedule();

                ASSERT_EQ(online.entries().size(),
                          offline.entries().size());
                EXPECT_TRUE(online.identicalTo(offline));
                ASSERT_EQ(online.reconfigEvents().size(),
                          offline.reconfigEvents().size());
                for (std::size_t i = 0;
                     i < online.reconfigEvents().size(); ++i) {
                    EXPECT_TRUE(online.reconfigEvents()[i] ==
                                offline.reconfigEvents()[i]);
                }
                total_migrations += offline.reconfigEvents().size();
            }
        }
    }
    // The grid must actually exercise migration, not vacuously pass.
    EXPECT_GT(total_migrations, 0u);
}

// ---------------------------------------------------------------
// Determinism of a fixed elastic policy
// ---------------------------------------------------------------

TEST_F(RepartitionTest, ElasticDeterministicAcrossRerunsAndThreads)
{
    const Accelerator acc = miniHda();
    const Workload wl = skewedSource().materialize("det");
    SchedulerOptions opts;
    opts.policy = Policy::Edf;
    opts.reconfig = miniElastic();

    opts.prefillThreads = 1;
    const Schedule serial =
        HeraldScheduler(model, opts).schedule(wl, acc);
    ASSERT_FALSE(serial.reconfigEvents().empty());

    // Rerun: bit-identical, including the migration windows.
    const Schedule rerun =
        HeraldScheduler(model, opts).schedule(wl, acc);
    EXPECT_TRUE(rerun.identicalTo(serial));

    // Parallel prefill (both the initial table build and the
    // post-migration column rebuilds): still bit-identical.
    opts.prefillThreads = 0;
    const Schedule parallel =
        HeraldScheduler(model, opts).schedule(wl, acc);
    EXPECT_TRUE(parallel.identicalTo(serial));
}

// ---------------------------------------------------------------
// Reconfiguration-event consistency
// ---------------------------------------------------------------

TEST_F(RepartitionTest, ReconfigEventsAreConsistent)
{
    const Accelerator acc = miniHda();
    const Workload wl = skewedSource().materialize("events");
    SchedulerOptions opts;
    opts.policy = Policy::Edf;
    opts.reconfig = miniElastic();
    const Schedule s =
        HeraldScheduler(model, opts).schedule(wl, acc);

    // validate() enforces that no entry on the donor or receiver
    // overlaps a reconfiguration window — with post-processing on,
    // so the idle-time passes respected the windows too.
    EXPECT_EQ(s.validate(wl, acc), "");

    const std::vector<ReconfigEvent> &events = s.reconfigEvents();
    ASSERT_FALSE(events.empty());
    const std::uint64_t total_pes = acc.chip().numPes;
    std::uint64_t prev_epoch = acc.partitionEpochId();
    double prev_start = 0.0;
    for (const ReconfigEvent &ev : events) {
        // Epoch ids increase monotonically from the base epoch.
        EXPECT_GT(ev.epochId, prev_epoch);
        prev_epoch = ev.epochId;
        // A migration moves work between two distinct parties.
        EXPECT_NE(ev.donor, ev.receiver);
        EXPECT_GT(ev.movedPes, 0u);
        // The window is exactly the modeled drain + rewire penalty.
        EXPECT_DOUBLE_EQ(ev.endCycle - ev.startCycle,
                         opts.reconfig.penaltyCycles(ev.movedPes));
        // Windows are committed in nondecreasing order.
        EXPECT_GE(ev.startCycle, prev_start);
        prev_start = ev.startCycle;
        // PEs are conserved and every sub-accelerator keeps >= 1.
        ASSERT_EQ(ev.peSplit.size(), acc.numSubAccs());
        std::uint64_t sum = 0;
        for (std::uint64_t pes : ev.peSplit) {
            EXPECT_GE(pes, 1u);
            sum += pes;
        }
        EXPECT_EQ(sum, total_pes);
    }
}

// ---------------------------------------------------------------
// Elastic strictly beats the best static split when load shifts
// ---------------------------------------------------------------

TEST_F(RepartitionTest, ElasticBeatsStaticOnShiftingLoad)
{
    // The bench asserts the full grid; here one NVDLA-heavy starting
    // split demonstrates the win end-to-end under ctest.
    accel::AcceleratorClass chip = accel::edgeClass();
    const double bw0 =
        chip.bwGBps * 640.0 / static_cast<double>(chip.numPes);
    const Accelerator acc = Accelerator::makeHda(
        chip,
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
        {640, 384}, {bw0, chip.bwGBps - bw0});
    const Workload wl = workload::shiftingLoadFactory(8);

    SchedulerOptions opts;
    opts.policy = Policy::Edf;
    const sched::SlaStats fixed =
        HeraldScheduler(model, opts)
            .schedule(wl, acc)
            .computeSla(wl);

    opts.reconfig.policy = Reconfig::BacklogSkew;
    opts.reconfig.skewThresholdCycles = 3e7;
    opts.reconfig.migrationQuantumPes = 128;
    opts.reconfig.drainCycles = 5e4;
    opts.reconfig.perPeRewireCycles = 100.0;
    opts.reconfig.cooldownCycles = 1e6;
    const Schedule elastic =
        HeraldScheduler(model, opts).schedule(wl, acc);
    EXPECT_EQ(elastic.validate(wl, acc), "");
    const sched::SlaStats moved = elastic.computeSla(wl);

    EXPECT_FALSE(elastic.reconfigEvents().empty());
    EXPECT_GT(fixed.deadlineMisses, 0u);
    EXPECT_LT(moved.deadlineMisses, fixed.deadlineMisses);
}

// ---------------------------------------------------------------
// Timeline rendering (satellite: 'R' windows + epoch header)
// ---------------------------------------------------------------

TEST_F(RepartitionTest, TimelineRendersReconfigWindows)
{
    const Accelerator acc = miniHda();
    const Workload wl = skewedSource().materialize("render");
    SchedulerOptions opts;
    opts.policy = Policy::Edf;
    opts.reconfig = miniElastic();
    const Schedule s =
        HeraldScheduler(model, opts).schedule(wl, acc);
    ASSERT_FALSE(s.reconfigEvents().empty());

    const std::string timeline = s.renderTimeline(wl);
    // Per-epoch capacity header, one line per epoch in force.
    EXPECT_NE(timeline.find("epoch "), std::string::npos);
    // The legend names the reconfiguration glyph.
    EXPECT_NE(timeline.find("'R', reconfiguration"),
              std::string::npos);

    // Glyph rendering proper, on a hand-built schedule whose window
    // is wide enough to span cells: both parties show 'R' for the
    // outage, the bystander row stays clear.
    Workload one("one");
    dnn::Model m("One");
    m.addLayer(dnn::makeFullyConnected("f", 16, 16));
    one.addModel(m, 1);
    Schedule manual(2);
    sched::ScheduledLayer e;
    e.endCycle = 300.0;
    manual.add(e);
    ReconfigEvent ev;
    ev.epochId = 1;
    ev.donor = 0;
    ev.receiver = 1;
    ev.movedPes = 64;
    ev.startCycle = 300.0;
    ev.endCycle = 600.0;
    ev.peSplit = {448, 576};
    manual.addReconfig(ev);
    // The post-migration execution extends the makespan past the
    // window (renderTimeline spans the busy entries).
    sched::ScheduledLayer after;
    after.accIdx = 1;
    after.startCycle = 600.0;
    after.endCycle = 1000.0;
    manual.add(after);
    const std::string rows = manual.renderTimeline(one, 60);
    const std::size_t acc0 = rows.find("acc0");
    const std::size_t acc1 = rows.find("acc1");
    ASSERT_NE(acc0, std::string::npos);
    ASSERT_NE(acc1, std::string::npos);
    const std::string row0 = rows.substr(acc0, acc1 - acc0);
    const std::string row1 =
        rows.substr(acc1, rows.find('\n', acc1) - acc1);
    EXPECT_NE(row0.find('R'), std::string::npos);
    EXPECT_NE(row1.find('R'), std::string::npos);
}

TEST_F(RepartitionTest, TimelineRendersMixedFaultAndReconfig)
{
    const Accelerator acc = miniHda();
    const Workload wl = skewedSource().materialize("render-mixed");
    SchedulerOptions opts;
    opts.policy = Policy::Edf;
    opts.reconfig = miniElastic();
    FaultTimeline faults = miniFaults();
    opts.faults = faults;
    const Schedule s =
        HeraldScheduler(model, opts).schedule(wl, acc);
    ASSERT_FALSE(s.reconfigEvents().empty());
    EXPECT_EQ(s.validate(wl, acc, &faults), "");

    // Both overlays in one render: fault outages as 'x',
    // reconfiguration windows as the distinct 'R'.
    const std::string timeline =
        s.renderTimeline(wl, &faults, 72);
    EXPECT_NE(timeline.find('x'), std::string::npos);
    EXPECT_NE(timeline.find('R'), std::string::npos);
    EXPECT_NE(timeline.find("epoch "), std::string::npos);
}

} // namespace
