/**
 * @file
 * Focused unit tests for the reuse-analysis engine using hand-built
 * loop nests, independent of the mappers: stationarity walks
 * (refetch factors), multicast, spatial reduction, temporal
 * accumulation runs, and the interaction of loop order with
 * partial-sum traffic.
 */

#include <gtest/gtest.h>

#include "cost/cost_model.hh"
#include "cost/reuse_analysis.hh"
#include "dnn/layer.hh"
#include "util/logging.hh"

namespace
{

using namespace herald;
using dataflow::Dim;
using dataflow::LoopKind;
using dataflow::LoopLevel;
using dataflow::Mapping;
using dataflow::TensorKind;

class ReuseAnalysisTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    /** K=8, C=4, 10x10 input, 3x3 filter -> 8x8 output. */
    dnn::CanonicalConv
    conv()
    {
        return dnn::makeConv("c", 8, 4, 10, 10, 3, 3).canonical();
    }
};

TEST_F(ReuseAnalysisTest, RefetchInnermostIrrelevantIsFree)
{
    // Weights don't depend on OY; an innermost OY loop leaves them
    // stationary.
    std::vector<LoopLevel> outer{{Dim::K, 4, LoopKind::Temporal},
                                 {Dim::OY, 8, LoopKind::Temporal}};
    EXPECT_EQ(cost::refetchFactor(conv(), TensorKind::Weight, outer),
              4u);
}

TEST_F(ReuseAnalysisTest, RefetchBrokenStationarityMultiplies)
{
    // Swapped order: the K loop below replaces the weight tile, so
    // the outer OY loop refetches it.
    std::vector<LoopLevel> outer{{Dim::OY, 8, LoopKind::Temporal},
                                 {Dim::K, 4, LoopKind::Temporal}};
    EXPECT_EQ(cost::refetchFactor(conv(), TensorKind::Weight, outer),
              32u);
}

TEST_F(ReuseAnalysisTest, RefetchEmptyLoopsIsOne)
{
    std::vector<LoopLevel> outer;
    EXPECT_EQ(cost::refetchFactor(conv(), TensorKind::Input, outer),
              1u);
}

TEST_F(ReuseAnalysisTest, RefetchAllRelevant)
{
    std::vector<LoopLevel> outer{{Dim::C, 2, LoopKind::Temporal},
                                 {Dim::OY, 4, LoopKind::Temporal},
                                 {Dim::OX, 4, LoopKind::Temporal}};
    // Input depends on all three.
    EXPECT_EQ(cost::refetchFactor(conv(), TensorKind::Input, outer),
              32u);
}

TEST_F(ReuseAnalysisTest, InputMulticastAcrossK)
{
    // Spatial K: every input word feeds all 8 k-lanes.
    std::vector<LoopLevel> nest{
        {Dim::K, 8, LoopKind::Spatial},
        {Dim::C, 4, LoopKind::Temporal},
        {Dim::OY, 8, LoopKind::Temporal},
        {Dim::OX, 8, LoopKind::Temporal},
        {Dim::R, 3, LoopKind::Temporal},
        {Dim::S, 3, LoopKind::Temporal}};
    Mapping m(conv(), nest, 8);
    cost::ReuseReport r = cost::analyzeMapping(m);
    EXPECT_DOUBLE_EQ(r.of(TensorKind::Input).multicast(), 8.0);
    // Weights are per-lane: no multicast.
    EXPECT_DOUBLE_EQ(r.of(TensorKind::Weight).multicast(), 1.0);
}

TEST_F(ReuseAnalysisTest, WeightMulticastAcrossOutputPlane)
{
    // Spatial OY x OX: one weight word feeds all 16 pixel PEs.
    std::vector<LoopLevel> nest{
        {Dim::K, 8, LoopKind::Temporal},
        {Dim::OY, 4, LoopKind::Spatial},
        {Dim::OX, 4, LoopKind::Spatial},
        {Dim::OY, 2, LoopKind::Temporal},
        {Dim::OX, 2, LoopKind::Temporal},
        {Dim::C, 4, LoopKind::Temporal},
        {Dim::R, 3, LoopKind::Temporal},
        {Dim::S, 3, LoopKind::Temporal}};
    Mapping m(conv(), nest, 16);
    cost::ReuseReport r = cost::analyzeMapping(m);
    EXPECT_DOUBLE_EQ(r.of(TensorKind::Weight).multicast(), 16.0);
    // Input halo sharing: union < sum.
    EXPECT_GT(r.of(TensorKind::Input).multicast(), 1.0);
}

TEST_F(ReuseAnalysisTest, SpatialReductionFromSpatialC)
{
    std::vector<LoopLevel> nest{
        {Dim::K, 8, LoopKind::Temporal},
        {Dim::C, 4, LoopKind::Spatial},
        {Dim::OY, 8, LoopKind::Temporal},
        {Dim::OX, 8, LoopKind::Temporal},
        {Dim::R, 3, LoopKind::Temporal},
        {Dim::S, 3, LoopKind::Temporal}};
    Mapping m(conv(), nest, 4);
    cost::ReuseReport r = cost::analyzeMapping(m);
    EXPECT_EQ(r.spatialReduction, 4u);
}

TEST_F(ReuseAnalysisTest, AccumulationRunFromInnerReductionLoops)
{
    // Inner nest ends with C, R, S: one psum register update per
    // 4*3*3 = 36 MACs.
    std::vector<LoopLevel> nest{
        {Dim::K, 8, LoopKind::Temporal},
        {Dim::OY, 8, LoopKind::Spatial},
        {Dim::OX, 8, LoopKind::Spatial},
        {Dim::C, 4, LoopKind::Temporal},
        {Dim::R, 3, LoopKind::Temporal},
        {Dim::S, 3, LoopKind::Temporal}};
    Mapping m(conv(), nest, 64);
    cost::ReuseReport r = cost::analyzeMapping(m);
    EXPECT_EQ(r.innerAccumRun, 36u);
}

TEST_F(ReuseAnalysisTest, AccumulationRunBrokenByOutputLoop)
{
    // An OX loop inside the reduction loops breaks the run.
    std::vector<LoopLevel> nest{
        {Dim::K, 8, LoopKind::Temporal},
        {Dim::OY, 8, LoopKind::Spatial},
        {Dim::C, 4, LoopKind::Temporal},
        {Dim::R, 3, LoopKind::Temporal},
        {Dim::S, 3, LoopKind::Temporal},
        {Dim::OX, 8, LoopKind::Temporal}};
    Mapping m(conv(), nest, 8);
    cost::ReuseReport r = cost::analyzeMapping(m);
    EXPECT_EQ(r.innerAccumRun, 1u);
}

TEST_F(ReuseAnalysisTest, OutputWrittenOnceWhenReductionInner)
{
    std::vector<LoopLevel> nest{
        {Dim::K, 8, LoopKind::Temporal},
        {Dim::OY, 8, LoopKind::Spatial},
        {Dim::OX, 8, LoopKind::Spatial},
        {Dim::C, 4, LoopKind::Temporal},
        {Dim::R, 3, LoopKind::Temporal},
        {Dim::S, 3, LoopKind::Temporal}};
    Mapping m(conv(), nest, 64);
    cost::ReuseReport r = cost::analyzeMapping(m);
    EXPECT_EQ(r.outputWrites(), 8ull * 8 * 8);
    EXPECT_EQ(r.outputReadbacks(), 0u);
}

TEST_F(ReuseAnalysisTest, PsumTrafficScalesWithOuterReduction)
{
    // C split: half inner, half outer of the output loops -> each
    // output tile spills once and is read back once.
    std::vector<LoopLevel> nest{
        {Dim::C, 2, LoopKind::Temporal},
        {Dim::OY, 8, LoopKind::Temporal},
        {Dim::K, 8, LoopKind::Spatial},
        {Dim::C, 2, LoopKind::Temporal},
        {Dim::R, 3, LoopKind::Temporal},
        {Dim::S, 3, LoopKind::Temporal},
        {Dim::OX, 8, LoopKind::Temporal}};
    Mapping m(conv(), nest, 8);
    cost::ReuseReport r = cost::analyzeMapping(m);
    // Union tile K8 x OX8 = 64, refetched per (C2 x OY8) = 1024
    // writes for 512 distinct outputs.
    EXPECT_EQ(r.outputWrites(), 1024u);
    EXPECT_EQ(r.outputReadbacks(), 512u);
}

TEST_F(ReuseAnalysisTest, DepthwiseInputFollowsK)
{
    dnn::CanonicalConv dw =
        dnn::makeDepthwise("dw", 8, 10, 10, 3, 3).canonical();
    // K temporal outer: depthwise input must be refetched per K slice
    // (it depends on K), weights likewise.
    std::vector<LoopLevel> outer{{Dim::K, 8, LoopKind::Temporal}};
    EXPECT_EQ(cost::refetchFactor(dw, TensorKind::Input, outer), 8u);
    EXPECT_EQ(cost::refetchFactor(dw, TensorKind::Weight, outer), 8u);
}

TEST_F(ReuseAnalysisTest, MacCountInvariant)
{
    std::vector<LoopLevel> nest{
        {Dim::K, 8, LoopKind::Temporal},
        {Dim::OY, 8, LoopKind::Spatial},
        {Dim::OX, 8, LoopKind::Spatial},
        {Dim::C, 4, LoopKind::Temporal},
        {Dim::R, 3, LoopKind::Temporal},
        {Dim::S, 3, LoopKind::Temporal}};
    Mapping m(conv(), nest, 64);
    cost::ReuseReport r = cost::analyzeMapping(m);
    EXPECT_EQ(r.outerIters * r.innerMacsPerPe * r.spatialSize,
              conv().macs());
}

TEST_F(ReuseAnalysisTest, RetentionScopeCutsDramTraffic)
{
    // The same layer with a growing L2: DRAM traffic must be
    // non-increasing and eventually reach the compulsory minimum
    // (weights once; activations forwarded).
    dnn::Layer layer = dnn::makeConv("c", 64, 32, 30, 30, 3, 3);
    cost::CostModel model;
    cost::SubAccResources res;
    res.numPes = 256;
    res.bwGBps = 32.0;

    double previous = 1e300;
    for (std::uint64_t l2 : {4ull << 10, 64ull << 10, 1ull << 20,
                             16ull << 20}) {
        res.l2Bytes = l2;
        cost::LayerCost c = model.evaluate(
            layer, dataflow::DataflowStyle::NVDLA, res);
        EXPECT_LE(c.dramBytes, previous + 1e-9) << l2;
        previous = c.dramBytes;
    }
    // With a 16 MiB buffer everything is retained: weights only.
    EXPECT_DOUBLE_EQ(previous,
                     static_cast<double>(layer.weightBytes()));
}

} // namespace
