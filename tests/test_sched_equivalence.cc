/**
 * @file
 * Scheduler equivalence suite: the table-driven, event-dispatch
 * scheduler must produce *bit-identical* schedules to the reference
 * implementation (per-layer cost queries + O(n_instances) scans) on
 * every factory scenario, under every combination of
 * {FIFO, EDF} x {BreadthFirst, DepthFirst} x postProcess {on, off} —
 * plus prefill-thread determinism and prebuilt-table reuse.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "sched/herald_scheduler.hh"
#include "sched/layer_cost_table.hh"
#include "sched/reference_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using accel::Accelerator;
using dataflow::DataflowStyle;
using sched::HeraldScheduler;
using sched::Schedule;
using sched::SchedulerOptions;
using workload::Workload;

Accelerator
edgeHda()
{
    return Accelerator::makeHda(
        accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
        {512, 512}, {8.0, 8.0});
}

Accelerator
threeWayHda()
{
    return Accelerator::makeHda(
        accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
         DataflowStyle::Eyeriss},
        {512, 256, 256}, {8.0, 4.0, 4.0});
}

/** Small mixed workload with batches and a staggered late stream. */
Workload
miniMixed()
{
    Workload wl("mini-mixed");
    dnn::Model conv_net("ConvNet");
    conv_net.addLayer(dnn::makeConv("c1", 64, 3, 58, 58, 3, 3));
    conv_net.addLayer(dnn::makeDepthwise("dw", 64, 56, 56, 3, 3));
    conv_net.addLayer(dnn::makeConv("c2", 128, 64, 28, 28, 3, 3));
    conv_net.addLayer(dnn::makeFullyConnected("fc", 10, 128));
    dnn::Model fc_net("FcNet");
    fc_net.addLayer(dnn::makeFullyConnected("f1", 1024, 1024));
    fc_net.addLayer(dnn::makeFullyConnected("f2", 1024, 1024));
    wl.addModel(std::move(conv_net), 2);
    wl.addModel(std::move(fc_net), 2, /*arrival=*/5e5,
                /*deadline=*/4e6);
    return wl;
}

/** One-layer frames stress the exhausted-before-release paths. */
Workload
tinyFramesFarApart()
{
    Workload wl("tiny-frames");
    dnn::Model tiny("Tiny");
    tiny.addLayer(dnn::makeFullyConnected("f", 256, 256));
    wl.addPeriodicModel(std::move(tiny), 6, /*period=*/1e7,
                        /*deadline=*/5e6);
    return wl;
}

/**
 * Sub-epsilon arrival ties: distinct arrivals closer than the
 * scheduler's kEps (1e-6 cycles) drive the nothing-has-arrived
 * fallback through its epsilon-tolerant reference scan (the one
 * branch the exact-equal-band closed form cannot take), including a
 * chained band that extends past the first epsilon window.
 */
Workload
subEpsilonArrivals()
{
    Workload wl("sub-eps-arrivals");
    dnn::Model a("A");
    a.addLayer(dnn::makeFullyConnected("f", 256, 256));
    a.addLayer(dnn::makeFullyConnected("g", 128, 256));
    dnn::Model b("B");
    b.addLayer(dnn::makeFullyConnected("f", 512, 128));
    dnn::Model c("C");
    c.addLayer(dnn::makeConv("c", 32, 16, 30, 30, 3, 3));
    wl.addModel(std::move(a), 2, /*arrival=*/100.0,
                /*deadline=*/6e6);
    wl.addModel(std::move(b), 1, /*arrival=*/100.0000005,
                /*deadline=*/4e6); // within kEps of 100.0
    wl.addModel(std::move(c), 1, /*arrival=*/100.0000012,
                /*deadline=*/5e6); // chains past the first window
    wl.addModel(dnn::mobileNetV2(), 1, /*arrival=*/3e7);
    return wl;
}

struct NamedWorkload
{
    std::string name;
    Workload wl;
};

std::vector<NamedWorkload>
scenarios()
{
    std::vector<NamedWorkload> out;
    out.push_back({"mini-mixed", miniMixed()});
    out.push_back({"tiny-frames", tinyFramesFarApart()});
    out.push_back({"sub-eps", subEpsilonArrivals()});
    out.push_back({"arvrA", workload::arvrA()});
    out.push_back({"arvrA60fps", workload::arvrA60fps(3)});
    out.push_back({"mixedTenant", workload::mixedTenantScenario(2)});
    return out;
}

class SchedEquivalenceTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    cost::CostModel model;

    void
    expectEquivalent(const Workload &wl, const Accelerator &acc,
                     const SchedulerOptions &opts,
                     const std::string &label)
    {
        HeraldScheduler scheduler(model, opts);
        Schedule fast = scheduler.schedule(wl, acc);
        Schedule ref = sched::referenceSchedule(model, opts, wl, acc);
        ASSERT_EQ(fast.entries().size(), ref.entries().size())
            << label;
        for (std::size_t i = 0; i < fast.entries().size(); ++i) {
            EXPECT_EQ(fast.entries()[i], ref.entries()[i])
                << label << " entry " << i;
        }
        EXPECT_TRUE(fast.identicalTo(ref)) << label;
        EXPECT_EQ(fast.validate(wl, acc), "") << label;
    }
};

TEST_F(SchedEquivalenceTest, AllScenariosAllPolicyCombinations)
{
    Accelerator acc = edgeHda();
    for (const NamedWorkload &s : scenarios()) {
        for (auto policy :
             {sched::Policy::Fifo, sched::Policy::Edf}) {
            for (auto ordering : {sched::Ordering::BreadthFirst,
                                  sched::Ordering::DepthFirst}) {
                for (bool pp : {false, true}) {
                    SchedulerOptions opts;
                    opts.policy = policy;
                    opts.ordering = ordering;
                    opts.postProcess = pp;
                    std::string label =
                        s.name + "/" + sched::toString(policy) +
                        "/" + sched::toString(ordering) +
                        (pp ? "/pp" : "/nopp");
                    expectEquivalent(s.wl, acc, opts, label);
                }
            }
        }
    }
}

TEST_F(SchedEquivalenceTest, PreemptionOffStaysPr4BitIdentical)
{
    // Acceptance criterion: Preemption::Off (explicitly spelled, not
    // just defaulted) must keep every equivalence-grid combination
    // bit-identical to the pre-preemption reference oracle — the
    // preemption machinery has to be completely inert when off.
    Accelerator acc = edgeHda();
    for (const NamedWorkload &s : scenarios()) {
        for (auto policy :
             {sched::Policy::Fifo, sched::Policy::Edf}) {
            for (bool pp : {false, true}) {
                SchedulerOptions opts;
                opts.policy = policy;
                opts.preemption = sched::Preemption::Off;
                opts.postProcess = pp;
                expectEquivalent(s.wl, acc, opts,
                                 s.name + "/preempt-off/" +
                                     sched::toString(policy) +
                                     (pp ? "/pp" : "/nopp"));
            }
        }
    }
}

TEST_F(SchedEquivalenceTest, FifoNeverPreempts)
{
    // FIFO's constant priority key can never mark an arrival as
    // strictly more urgent, so even with preemption points enabled
    // the production schedule must equal the (preemption-free)
    // reference oracle bit for bit.
    Accelerator acc = edgeHda();
    for (const NamedWorkload &s : scenarios()) {
        SchedulerOptions pre;
        pre.preemption = sched::Preemption::AtLayerBoundary;
        HeraldScheduler scheduler(model, pre);
        Schedule fast = scheduler.schedule(s.wl, acc);
        SchedulerOptions off; // reference rejects preemption opts
        Schedule ref =
            sched::referenceSchedule(model, off, s.wl, acc);
        EXPECT_TRUE(fast.identicalTo(ref)) << s.name;
    }
}

TEST_F(SchedEquivalenceTest, DeprecatedDeadlineAwareAliasStaysIdentical)
{
    // The deprecated bool must route through the same EDF path the
    // enum selects — bit-identical to the reference on both spellings.
    Accelerator acc = edgeHda();
    SchedulerOptions alias_opts;
    alias_opts.deadlineAware = true;
    expectEquivalent(workload::arvrA60fps(3), acc, alias_opts,
                     "alias/EDF");
}

TEST_F(SchedEquivalenceTest, ThreeWayHdaWithContextChange)
{
    Accelerator acc = threeWayHda();
    SchedulerOptions opts;
    opts.contextChangeCycles = 1e4;
    expectEquivalent(miniMixed(), acc, opts, "3way/context");
    opts.deadlineAware = true;
    expectEquivalent(workload::arvrA60fps(2), acc, opts,
                     "3way/context/EDF");
}

TEST_F(SchedEquivalenceTest, LoadBalanceVariantsStayIdentical)
{
    Accelerator acc = edgeHda();
    SchedulerOptions opts;
    opts.loadBalance = false;
    expectEquivalent(miniMixed(), acc, opts, "noLB");
    opts.loadBalance = true;
    opts.loadBalanceFactor = 1.2;
    opts.loadBalanceMaxDegradation = 8.0;
    expectEquivalent(miniMixed(), acc, opts, "tightLB");
}

TEST_F(SchedEquivalenceTest, AlternateMetricsStayIdentical)
{
    Accelerator acc = edgeHda();
    for (auto metric : {sched::Metric::Latency,
                        sched::Metric::Energy}) {
        SchedulerOptions opts;
        opts.metric = metric;
        expectEquivalent(miniMixed(), acc, opts,
                         std::string("metric/") +
                             sched::toString(metric));
    }
}

TEST_F(SchedEquivalenceTest, RdaFlexibleArrayStaysIdentical)
{
    Accelerator acc = Accelerator::makeRda(accel::edgeClass());
    SchedulerOptions opts;
    expectEquivalent(miniMixed(), acc, opts, "rda");
}

TEST_F(SchedEquivalenceTest, PrefillThreadCountIsIrrelevant)
{
    // The parallel table prefill must be bit-identical to the serial
    // one for any worker count (pure per-row fills). The workload
    // needs enough unique layers x sub-accs to cross the
    // kMinParallelEvals gate, or the pool never spins up.
    Accelerator acc = Accelerator::makeHda(
        accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
         DataflowStyle::Eyeriss, DataflowStyle::NVDLA},
        {256, 256, 256, 256}, {4.0, 4.0, 4.0, 4.0});
    Workload wl("zoo");
    wl.addModel(dnn::resnet50(), 1);
    wl.addModel(dnn::mobileNetV1(), 1);
    wl.addModel(dnn::mobileNetV2(), 1);
    wl.addModel(dnn::uNet(), 1);
    wl.addModel(dnn::ssdResnet34(), 1);
    wl.addModel(dnn::ssdMobileNetV1(), 1);
    wl.addModel(dnn::gnmt(), 1);
    wl.addModel(dnn::brqHandposeNet(), 1);
    wl.addModel(dnn::focalLengthDepthNet(), 1);
    ASSERT_GE(wl.totalLayers() * acc.numSubAccs(),
              sched::LayerCostTable::kMinParallelEvals)
        << "workload too small to engage the parallel prefill";

    SchedulerOptions serial_opts;
    serial_opts.prefillThreads = 1;
    SchedulerOptions parallel_opts = serial_opts;
    parallel_opts.prefillThreads = 7;
    Schedule a =
        HeraldScheduler(model, serial_opts).schedule(wl, acc);
    Schedule b =
        HeraldScheduler(model, parallel_opts).schedule(wl, acc);
    EXPECT_TRUE(a.identicalTo(b));
}

TEST_F(SchedEquivalenceTest, PrebuiltTableReuseMatchesInternalBuild)
{
    Accelerator acc = edgeHda();
    Workload wl = workload::arvrA60fps(2);
    SchedulerOptions opts;
    opts.deadlineAware = true;
    HeraldScheduler scheduler(model, opts);
    sched::LayerCostTable table = sched::LayerCostTable::build(
        model, wl, acc, opts.metric, opts.rdaOverheads, 1);
    EXPECT_EQ(table.numSubAccs(), acc.numSubAccs());
    EXPECT_GT(table.numUniqueLayers(), 0u);
    Schedule internal = scheduler.schedule(wl, acc);
    Schedule reused = scheduler.schedule(wl, acc, table);
    Schedule reused_again = scheduler.schedule(wl, acc, table);
    EXPECT_TRUE(internal.identicalTo(reused));
    EXPECT_TRUE(internal.identicalTo(reused_again));
}

TEST_F(SchedEquivalenceTest, TableOrderMatchesMetricSort)
{
    Accelerator acc = threeWayHda();
    Workload wl = miniMixed();
    sched::LayerCostTable table = sched::LayerCostTable::build(
        model, wl, acc, sched::Metric::Edp, accel::RdaOverheads{},
        1);
    for (std::size_t row = 0; row < table.numUniqueLayers(); ++row) {
        const std::size_t *order = table.order(row);
        for (std::size_t k = 1; k < table.numSubAccs(); ++k) {
            EXPECT_LE(table.metric(row, order[k - 1]),
                      table.metric(row, order[k]))
                << "row " << row;
        }
    }
}

} // namespace
