/**
 * @file
 * Parameterized scheduler properties: for every combination of
 * workload mix, accelerator family and scheduler option set, the
 * produced schedule must validate (completeness, dependences,
 * non-overlap, memory) and satisfy basic sanity invariants. This is
 * the harness that catches post-processing regressions (overlaps,
 * dependence inversions) across the whole configuration space.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using accel::Accelerator;
using dataflow::DataflowStyle;
using sched::SchedulerOptions;
using workload::Workload;

enum class WorkloadKind
{
    SingleModel,
    TwoModels,
    BatchedMix,
    FcHeavy,
};

const char *
name(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::SingleModel:
        return "single";
      case WorkloadKind::TwoModels:
        return "two";
      case WorkloadKind::BatchedMix:
        return "batched";
      case WorkloadKind::FcHeavy:
        return "fcheavy";
    }
    return "?";
}

Workload
makeWorkload(WorkloadKind kind)
{
    Workload wl(name(kind));
    switch (kind) {
      case WorkloadKind::SingleModel:
        wl.addModel(dnn::mobileNetV2(), 1);
        break;
      case WorkloadKind::TwoModels:
        wl.addModel(dnn::mobileNetV2(), 1);
        wl.addModel(dnn::brqHandposeNet(), 1);
        break;
      case WorkloadKind::BatchedMix:
        wl.addModel(dnn::mobileNetV1(), 2);
        wl.addModel(dnn::brqHandposeNet(), 3);
        break;
      case WorkloadKind::FcHeavy:
        wl.addModel(dnn::brqHandposeNet(), 2);
        wl.addModel(dnn::gnmt(8), 1);
        break;
    }
    return wl;
}

enum class AccKind
{
    Fda,
    SmFda,
    Rda,
    Hda2,
    Hda3,
};

const char *
name(AccKind kind)
{
    switch (kind) {
      case AccKind::Fda:
        return "fda";
      case AccKind::SmFda:
        return "smfda";
      case AccKind::Rda:
        return "rda";
      case AccKind::Hda2:
        return "hda2";
      case AccKind::Hda3:
        return "hda3";
    }
    return "?";
}

Accelerator
makeAccelerator(AccKind kind)
{
    accel::AcceleratorClass chip = accel::edgeClass();
    switch (kind) {
      case AccKind::Fda:
        return Accelerator::makeFda(chip, DataflowStyle::NVDLA);
      case AccKind::SmFda:
        return Accelerator::makeScaledOutFda(
            chip, DataflowStyle::ShiDiannao, 2);
      case AccKind::Rda:
        return Accelerator::makeRda(chip);
      case AccKind::Hda2:
        return Accelerator::makeHda(
            chip, {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
            {256, 768}, {4.0, 12.0});
      case AccKind::Hda3:
        return Accelerator::makeHda(
            chip,
            {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
             DataflowStyle::Eyeriss},
            {256, 512, 256}, {4.0, 8.0, 4.0});
    }
    util::panic("unknown AccKind");
}

enum class OptKind
{
    Default,
    Greedy,
    DepthFirst,
    TightBalance,
    LatencyMetric,
    ContextPenalty,
};

const char *
name(OptKind kind)
{
    switch (kind) {
      case OptKind::Default:
        return "default";
      case OptKind::Greedy:
        return "greedy";
      case OptKind::DepthFirst:
        return "depthfirst";
      case OptKind::TightBalance:
        return "tightlb";
      case OptKind::LatencyMetric:
        return "latmetric";
      case OptKind::ContextPenalty:
        return "ctxpenalty";
    }
    return "?";
}

SchedulerOptions
makeOptions(OptKind kind)
{
    SchedulerOptions opts;
    switch (kind) {
      case OptKind::Default:
        break;
      case OptKind::Greedy:
        opts.loadBalance = false;
        opts.postProcess = false;
        break;
      case OptKind::DepthFirst:
        opts.ordering = sched::Ordering::DepthFirst;
        break;
      case OptKind::TightBalance:
        opts.loadBalanceFactor = 1.2;
        opts.loadBalanceMaxDegradation = 16.0;
        break;
      case OptKind::LatencyMetric:
        opts.metric = sched::Metric::Latency;
        break;
      case OptKind::ContextPenalty:
        opts.contextChangeCycles = 10000.0;
        break;
    }
    return opts;
}

using SchedParam = std::tuple<WorkloadKind, AccKind, OptKind>;

class SchedProperty : public ::testing::TestWithParam<SchedParam>
{
  protected:
    void SetUp() override { util::setVerbose(false); }
};

TEST_P(SchedProperty, ScheduleIsValidAndSane)
{
    auto [wl_kind, acc_kind, opt_kind] = GetParam();
    Workload wl = makeWorkload(wl_kind);
    Accelerator acc = makeAccelerator(acc_kind);
    cost::CostModel model;
    sched::HeraldScheduler scheduler(model, makeOptions(opt_kind));

    sched::Schedule s = scheduler.schedule(wl, acc);

    // The full validator: completeness, dependences, non-overlap,
    // global-buffer occupancy.
    EXPECT_EQ(s.validate(wl, acc), "");

    // Sanity invariants.
    sched::ScheduleSummary sum =
        s.finalize(acc, model.energyModel());
    EXPECT_GT(sum.makespanCycles, 0.0);
    EXPECT_GT(sum.energyUnits, 0.0);
    double busy_total = 0.0;
    for (double b : sum.busyCycles) {
        EXPECT_LE(b, sum.makespanCycles + 1e-6);
        busy_total += b;
    }
    EXPECT_GT(busy_total, 0.0);
    // Peak occupancy is within the global buffer (also checked by
    // the validator's sweep; this exercises the public accessor).
    EXPECT_LE(s.peakOccupancyBytes(), acc.globalBufferBytes());
}

TEST_P(SchedProperty, DeterministicAcrossRuns)
{
    auto [wl_kind, acc_kind, opt_kind] = GetParam();
    Workload wl = makeWorkload(wl_kind);
    Accelerator acc = makeAccelerator(acc_kind);
    cost::CostModel model;
    sched::HeraldScheduler scheduler(model, makeOptions(opt_kind));

    sched::Schedule a = scheduler.schedule(wl, acc);
    sched::Schedule b = scheduler.schedule(wl, acc);
    ASSERT_EQ(a.entries().size(), b.entries().size());
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        EXPECT_EQ(a.entries()[i].accIdx, b.entries()[i].accIdx);
        EXPECT_DOUBLE_EQ(a.entries()[i].startCycle,
                         b.entries()[i].startCycle);
    }
}

TEST_P(SchedProperty, TimelineRenders)
{
    auto [wl_kind, acc_kind, opt_kind] = GetParam();
    Workload wl = makeWorkload(wl_kind);
    Accelerator acc = makeAccelerator(acc_kind);
    cost::CostModel model;
    sched::HeraldScheduler scheduler(model, makeOptions(opt_kind));
    sched::Schedule s = scheduler.schedule(wl, acc);
    std::string timeline = s.renderTimeline(wl, 48);
    // One row per sub-accelerator plus the axis.
    EXPECT_NE(timeline.find("acc0"), std::string::npos);
    if (acc.numSubAccs() > 1)
        EXPECT_NE(timeline.find("acc1"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedProperty,
    ::testing::Combine(
        ::testing::Values(WorkloadKind::SingleModel,
                          WorkloadKind::TwoModels,
                          WorkloadKind::BatchedMix,
                          WorkloadKind::FcHeavy),
        ::testing::Values(AccKind::Fda, AccKind::SmFda, AccKind::Rda,
                          AccKind::Hda2, AccKind::Hda3),
        ::testing::Values(OptKind::Default, OptKind::Greedy,
                          OptKind::DepthFirst, OptKind::TightBalance,
                          OptKind::LatencyMetric,
                          OptKind::ContextPenalty)),
    [](const ::testing::TestParamInfo<SchedParam> &info) {
        return std::string(name(std::get<0>(info.param))) + "_" +
               name(std::get<1>(info.param)) + "_" +
               name(std::get<2>(info.param));
    });

} // namespace
