/**
 * @file
 * Parameterized scheduler properties: for every combination of
 * workload mix, accelerator family and scheduler option set, the
 * produced schedule must validate (completeness, dependences,
 * non-overlap, memory) and satisfy basic sanity invariants. This is
 * the harness that catches post-processing regressions (overlaps,
 * dependence inversions) across the whole configuration space.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using accel::Accelerator;
using dataflow::DataflowStyle;
using sched::SchedulerOptions;
using workload::Workload;

enum class WorkloadKind
{
    SingleModel,
    TwoModels,
    BatchedMix,
    FcHeavy,
    Periodic,
};

const char *
name(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::SingleModel:
        return "single";
      case WorkloadKind::TwoModels:
        return "two";
      case WorkloadKind::BatchedMix:
        return "batched";
      case WorkloadKind::FcHeavy:
        return "fcheavy";
      case WorkloadKind::Periodic:
        return "periodic";
    }
    return "?";
}

Workload
makeWorkload(WorkloadKind kind)
{
    Workload wl(name(kind));
    switch (kind) {
      case WorkloadKind::SingleModel:
        wl.addModel(dnn::mobileNetV2(), 1);
        break;
      case WorkloadKind::TwoModels:
        wl.addModel(dnn::mobileNetV2(), 1);
        wl.addModel(dnn::brqHandposeNet(), 1);
        break;
      case WorkloadKind::BatchedMix:
        wl.addModel(dnn::mobileNetV1(), 2);
        wl.addModel(dnn::brqHandposeNet(), 3);
        break;
      case WorkloadKind::FcHeavy:
        wl.addModel(dnn::brqHandposeNet(), 2);
        wl.addModel(dnn::gnmt(8), 1);
        break;
      case WorkloadKind::Periodic:
        // Staggered frame streams with deadlines: exercises the
        // arrival-aware scheduling and post-processing paths.
        wl.addPeriodicModel(dnn::mobileNetV2(), 3, 5e6);
        wl.addPeriodicModel(dnn::brqHandposeNet(), 2, 8e6, 4e6);
        wl.addModel(dnn::mobileNetV1(), 1, 2e6);
        break;
    }
    return wl;
}

enum class AccKind
{
    Fda,
    SmFda,
    Rda,
    Hda2,
    Hda3,
};

const char *
name(AccKind kind)
{
    switch (kind) {
      case AccKind::Fda:
        return "fda";
      case AccKind::SmFda:
        return "smfda";
      case AccKind::Rda:
        return "rda";
      case AccKind::Hda2:
        return "hda2";
      case AccKind::Hda3:
        return "hda3";
    }
    return "?";
}

Accelerator
makeAccelerator(AccKind kind)
{
    accel::AcceleratorClass chip = accel::edgeClass();
    switch (kind) {
      case AccKind::Fda:
        return Accelerator::makeFda(chip, DataflowStyle::NVDLA);
      case AccKind::SmFda:
        return Accelerator::makeScaledOutFda(
            chip, DataflowStyle::ShiDiannao, 2);
      case AccKind::Rda:
        return Accelerator::makeRda(chip);
      case AccKind::Hda2:
        return Accelerator::makeHda(
            chip, {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
            {256, 768}, {4.0, 12.0});
      case AccKind::Hda3:
        return Accelerator::makeHda(
            chip,
            {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
             DataflowStyle::Eyeriss},
            {256, 512, 256}, {4.0, 8.0, 4.0});
    }
    util::panic("unknown AccKind");
}

enum class OptKind
{
    Default,
    Greedy,
    DepthFirst,
    TightBalance,
    LatencyMetric,
    ContextPenalty,
    DeadlineAware,
    LeastSlack,
    LeastSlackDrop,
    Preempt,
    PreemptDoom,
    Hysteresis,
};

const char *
name(OptKind kind)
{
    switch (kind) {
      case OptKind::Default:
        return "default";
      case OptKind::Greedy:
        return "greedy";
      case OptKind::DepthFirst:
        return "depthfirst";
      case OptKind::TightBalance:
        return "tightlb";
      case OptKind::LatencyMetric:
        return "latmetric";
      case OptKind::ContextPenalty:
        return "ctxpenalty";
      case OptKind::DeadlineAware:
        return "edf";
      case OptKind::LeastSlack:
        return "lst";
      case OptKind::LeastSlackDrop:
        return "lstdrop";
      case OptKind::Preempt:
        return "preempt";
      case OptKind::PreemptDoom:
        return "preemptdoom";
      case OptKind::Hysteresis:
        return "hysteresis";
    }
    return "?";
}

SchedulerOptions
makeOptions(OptKind kind)
{
    SchedulerOptions opts;
    switch (kind) {
      case OptKind::Default:
        break;
      case OptKind::Greedy:
        opts.loadBalance = false;
        opts.postProcess = false;
        break;
      case OptKind::DepthFirst:
        opts.ordering = sched::Ordering::DepthFirst;
        break;
      case OptKind::TightBalance:
        opts.loadBalanceFactor = 1.2;
        opts.loadBalanceMaxDegradation = 16.0;
        break;
      case OptKind::LatencyMetric:
        opts.metric = sched::Metric::Latency;
        break;
      case OptKind::ContextPenalty:
        opts.contextChangeCycles = 10000.0;
        break;
      case OptKind::DeadlineAware:
        opts.policy = sched::Policy::Edf;
        break;
      case OptKind::LeastSlack:
        opts.policy = sched::Policy::Lst;
        break;
      case OptKind::LeastSlackDrop:
        opts.policy = sched::Policy::Lst;
        opts.dropPolicy = sched::DropPolicy::HopelessFrames;
        break;
      case OptKind::Preempt:
        opts.policy = sched::Policy::Lst;
        opts.preemption = sched::Preemption::AtLayerBoundary;
        break;
      case OptKind::PreemptDoom:
        opts.policy = sched::Policy::Lst;
        opts.preemption = sched::Preemption::AtLayerBoundary;
        opts.dropPolicy = sched::DropPolicy::DoomedFrames;
        break;
      case OptKind::Hysteresis:
        opts.policy = sched::Policy::Lst;
        opts.lstHysteresisCycles = 5e5;
        opts.contextChangeCycles = 10000.0;
        break;
    }
    return opts;
}

using SchedParam = std::tuple<WorkloadKind, AccKind, OptKind>;

class SchedProperty : public ::testing::TestWithParam<SchedParam>
{
  protected:
    void SetUp() override { util::setVerbose(false); }
};

TEST_P(SchedProperty, ScheduleIsValidAndSane)
{
    auto [wl_kind, acc_kind, opt_kind] = GetParam();
    Workload wl = makeWorkload(wl_kind);
    Accelerator acc = makeAccelerator(acc_kind);
    cost::CostModel model;
    sched::HeraldScheduler scheduler(model, makeOptions(opt_kind));

    sched::Schedule s = scheduler.schedule(wl, acc);

    // The full validator: completeness, dependences, non-overlap,
    // global-buffer occupancy.
    EXPECT_EQ(s.validate(wl, acc), "");

    // Sanity invariants.
    sched::ScheduleSummary sum =
        s.finalize(acc, model.energyModel());
    EXPECT_GT(sum.makespanCycles, 0.0);
    EXPECT_GT(sum.energyUnits, 0.0);
    double busy_total = 0.0;
    for (double b : sum.busyCycles) {
        EXPECT_LE(b, sum.makespanCycles + 1e-6);
        busy_total += b;
    }
    EXPECT_GT(busy_total, 0.0);
    // Peak occupancy is within the global buffer (also checked by
    // the validator's sweep; this exercises the public accessor).
    EXPECT_LE(s.peakOccupancyBytes(), acc.globalBufferBytes());
}

TEST_P(SchedProperty, DeterministicAcrossRuns)
{
    auto [wl_kind, acc_kind, opt_kind] = GetParam();
    Workload wl = makeWorkload(wl_kind);
    Accelerator acc = makeAccelerator(acc_kind);
    cost::CostModel model;
    sched::HeraldScheduler scheduler(model, makeOptions(opt_kind));

    sched::Schedule a = scheduler.schedule(wl, acc);
    sched::Schedule b = scheduler.schedule(wl, acc);
    ASSERT_EQ(a.entries().size(), b.entries().size());
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        EXPECT_EQ(a.entries()[i].accIdx, b.entries()[i].accIdx);
        EXPECT_DOUBLE_EQ(a.entries()[i].startCycle,
                         b.entries()[i].startCycle);
    }
}

TEST_P(SchedProperty, TimelineRenders)
{
    auto [wl_kind, acc_kind, opt_kind] = GetParam();
    Workload wl = makeWorkload(wl_kind);
    Accelerator acc = makeAccelerator(acc_kind);
    cost::CostModel model;
    sched::HeraldScheduler scheduler(model, makeOptions(opt_kind));
    sched::Schedule s = scheduler.schedule(wl, acc);
    std::string timeline = s.renderTimeline(wl, 48);
    // One row per sub-accelerator plus the axis.
    EXPECT_NE(timeline.find("acc0"), std::string::npos);
    if (acc.numSubAccs() > 1) {
        EXPECT_NE(timeline.find("acc1"), std::string::npos);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedProperty,
    ::testing::Combine(
        ::testing::Values(WorkloadKind::SingleModel,
                          WorkloadKind::TwoModels,
                          WorkloadKind::BatchedMix,
                          WorkloadKind::FcHeavy,
                          WorkloadKind::Periodic),
        ::testing::Values(AccKind::Fda, AccKind::SmFda, AccKind::Rda,
                          AccKind::Hda2, AccKind::Hda3),
        ::testing::Values(OptKind::Default, OptKind::Greedy,
                          OptKind::DepthFirst, OptKind::TightBalance,
                          OptKind::LatencyMetric,
                          OptKind::ContextPenalty,
                          OptKind::DeadlineAware,
                          OptKind::LeastSlack,
                          OptKind::LeastSlackDrop, OptKind::Preempt,
                          OptKind::PreemptDoom,
                          OptKind::Hysteresis)),
    [](const ::testing::TestParamInfo<SchedParam> &info) {
        return std::string(name(std::get<0>(info.param))) + "_" +
               name(std::get<1>(info.param)) + "_" +
               name(std::get<2>(info.param));
    });

// ---------------------------------------------------------------
// Randomized post-processing property: idle-time elimination must
// never introduce dependence, overlap, arrival or memory violations,
// and must never worsen the makespan, on arbitrary workloads.
// ---------------------------------------------------------------

namespace
{

dnn::Model
randomModel(util::SplitMix64 &rng, int tag)
{
    static const std::uint64_t kChannels[] = {16, 32, 64, 128};
    static const std::uint64_t kSizes[] = {14, 28, 56};
    static const std::uint64_t kFcDims[] = {128, 256, 1024};
    dnn::Model model("Rand" + std::to_string(tag));
    int n_layers = 1 + static_cast<int>(rng.nextBounded(5));
    for (int l = 0; l < n_layers; ++l) {
        std::string lname = "l" + std::to_string(l);
        switch (rng.nextBounded(3)) {
          case 0:
            model.addLayer(dnn::makeConv(
                lname, kChannels[rng.nextBounded(4)],
                kChannels[rng.nextBounded(4)],
                kSizes[rng.nextBounded(3)],
                kSizes[rng.nextBounded(3)], 3, 3));
            break;
          case 1:
            model.addLayer(dnn::makeDepthwise(
                lname, kChannels[rng.nextBounded(4)],
                kSizes[rng.nextBounded(3)],
                kSizes[rng.nextBounded(3)], 3, 3));
            break;
          default:
            model.addLayer(dnn::makeFullyConnected(
                lname, kFcDims[rng.nextBounded(3)],
                kFcDims[rng.nextBounded(3)]));
            break;
        }
    }
    return model;
}

Workload
randomWorkload(util::SplitMix64 &rng, int trial)
{
    Workload wl("rand" + std::to_string(trial));
    int n_models = 1 + static_cast<int>(rng.nextBounded(3));
    for (int m = 0; m < n_models; ++m) {
        dnn::Model model = randomModel(rng, m);
        int batches = 1 + static_cast<int>(rng.nextBounded(3));
        if (rng.nextBounded(2) == 0) {
            double period =
                1e5 + static_cast<double>(rng.nextBounded(1000)) *
                          1e3;
            wl.addPeriodicModel(std::move(model), batches, period);
        } else {
            double arrival = static_cast<double>(
                rng.nextBounded(4) * 250000);
            wl.addModel(std::move(model), batches, arrival);
        }
    }
    return wl;
}

} // namespace

// ---------------------------------------------------------------
// Randomized preemption/policy/drop property sweep: every preemption
// x selection policy x drop policy x post-processing combination
// must produce a schedule that validates (completeness modulo
// dropped frames — which may keep a committed prefix under
// DoomedFrames — dependences, arrivals, non-overlap, memory) with
// internally consistent SLA statistics on seeded random periodic
// workloads, bit-identical across prefill thread counts.
// ---------------------------------------------------------------

TEST(PolicyDropRandomized, ValidSchedulesAndConsistentSla)
{
    util::setVerbose(false);
    cost::CostModel model;
    util::SplitMix64 rng(424242);

    for (int trial = 0; trial < 12; ++trial) {
        Workload wl = randomWorkload(rng, trial);
        Accelerator acc = makeAccelerator(
            static_cast<AccKind>(rng.nextBounded(5)));
        for (auto policy : {sched::Policy::Fifo, sched::Policy::Edf,
                            sched::Policy::Lst}) {
            for (auto drop : {sched::DropPolicy::None,
                              sched::DropPolicy::HopelessFrames,
                              sched::DropPolicy::DoomedFrames}) {
                for (bool pp : {false, true}) {
                    SchedulerOptions opts;
                    opts.policy = policy;
                    opts.dropPolicy = drop;
                    opts.postProcess = pp;
                    // Preemption rides the trial parity so the sweep
                    // covers both settings without doubling runtime;
                    // equivalence of Off to the reference oracle is
                    // pinned separately by test_sched_equivalence.
                    opts.preemption =
                        trial % 2 == 0
                            ? sched::Preemption::AtLayerBoundary
                            : sched::Preemption::Off;
                    sched::Schedule s =
                        sched::HeraldScheduler(model, opts)
                            .schedule(wl, acc);
                    std::string label =
                        std::string(sched::toString(policy)) + "/" +
                        sched::toString(drop) + "/" +
                        sched::toString(opts.preemption) +
                        (pp ? "/pp" : "/nopp") + " trial " +
                        std::to_string(trial);

                    // Full validity (includes arrival respect).
                    EXPECT_EQ(s.validate(wl, acc), "") << label;
                    for (const sched::ScheduledLayer &e :
                         s.entries()) {
                        EXPECT_GE(
                            e.startCycle,
                            wl.instances()[e.instanceIdx]
                                    .arrivalCycle -
                                1e-6)
                            << label;
                    }
                    if (drop == sched::DropPolicy::None) {
                        EXPECT_TRUE(s.droppedInstances().empty())
                            << label;
                    }

                    // SLA internal consistency.
                    sched::SlaStats sla = s.computeSla(wl);
                    EXPECT_EQ(sla.frames, wl.numInstances())
                        << label;
                    EXPECT_EQ(sla.droppedFrames,
                              s.droppedInstances().size())
                        << label;
                    EXPECT_GE(sla.deadlineMisses, sla.droppedFrames)
                        << label;
                    EXPECT_LE(sla.deadlineMisses,
                              sla.framesWithDeadline)
                        << label;
                    EXPECT_LE(sla.missRate, 1.0 + 1e-12) << label;
                    EXPECT_GE(sla.missRate, 0.0) << label;
                    EXPECT_LE(sla.p50LatencyCycles,
                              sla.p99LatencyCycles)
                        << label;
                    EXPECT_LE(sla.p99LatencyCycles,
                              sla.maxLatencyCycles)
                        << label;
                    std::size_t missed = 0;
                    std::size_t dropped = 0;
                    for (const sched::InstanceSla &inst :
                         sla.perInstance) {
                        missed += inst.missed ? 1 : 0;
                        dropped += inst.dropped ? 1 : 0;
                        if (inst.dropped) {
                            EXPECT_FALSE(inst.scheduled) << label;
                        }
                    }
                    EXPECT_EQ(missed, sla.deadlineMisses) << label;
                    EXPECT_EQ(dropped, sla.droppedFrames) << label;
                }
            }
        }
    }
}

TEST(PostProcessRandomized, NeverIntroducesViolations)
{
    util::setVerbose(false);
    cost::CostModel model;
    util::SplitMix64 rng(20260726);

    for (int trial = 0; trial < 16; ++trial) {
        Workload wl = randomWorkload(rng, trial);
        Accelerator acc = makeAccelerator(static_cast<AccKind>(
            rng.nextBounded(5)));

        SchedulerOptions opts;
        opts.deadlineAware = rng.nextBounded(2) == 0;
        opts.lookaheadDepth =
            1 + static_cast<int>(rng.nextBounded(6));
        opts.maxPostPasses =
            1 + static_cast<int>(rng.nextBounded(8));
        if (rng.nextBounded(3) == 0)
            opts.contextChangeCycles = 5000.0;
        SchedulerOptions no_pp = opts;
        no_pp.postProcess = false;
        opts.postProcess = true;

        sched::Schedule with_pp =
            sched::HeraldScheduler(model, opts).schedule(wl, acc);
        sched::Schedule without_pp =
            sched::HeraldScheduler(model, no_pp).schedule(wl, acc);

        EXPECT_EQ(with_pp.validate(wl, acc), "")
            << "trial " << trial << " on " << acc.name();
        EXPECT_EQ(without_pp.validate(wl, acc), "")
            << "trial " << trial << " on " << acc.name();
        EXPECT_LE(with_pp.makespanCycles(),
                  without_pp.makespanCycles() + 1e-6)
            << "trial " << trial;
    }
}

} // namespace
