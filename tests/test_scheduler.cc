/**
 * @file
 * Scheduler tests: schedule well-formedness (validated by the
 * Schedule checker: completeness, dependences, non-overlap, memory),
 * layer parallelism across sub-accelerators, dataflow-preference
 * assignment, load balancing, post-processing monotonicity, and the
 * Herald-vs-greedy comparison.
 */

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "accel/accelerator.hh"
#include "dnn/model_zoo.hh"
#include "sched/greedy_scheduler.hh"
#include "sched/herald_scheduler.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using accel::Accelerator;
using dataflow::DataflowStyle;
using sched::HeraldScheduler;
using sched::Schedule;
using sched::SchedulerOptions;
using workload::Workload;

/** Small two-model workload that schedules fast. */
Workload
miniWorkload()
{
    Workload wl("mini");
    dnn::Model conv_net("ConvNet");
    conv_net.addLayer(dnn::makeConv("c1", 64, 3, 58, 58, 3, 3));
    conv_net.addLayer(dnn::makeDepthwise("dw", 64, 56, 56, 3, 3));
    conv_net.addLayer(dnn::makeConv("c2", 128, 64, 28, 28, 3, 3));
    conv_net.addLayer(dnn::makeFullyConnected("fc", 10, 128));
    dnn::Model fc_net("FcNet");
    fc_net.addLayer(dnn::makeFullyConnected("f1", 1024, 1024));
    fc_net.addLayer(dnn::makeFullyConnected("f2", 1024, 1024));
    fc_net.addLayer(dnn::makeFullyConnected("f3", 256, 1024));
    wl.addModel(std::move(conv_net), 2);
    wl.addModel(std::move(fc_net), 2);
    return wl;
}

Accelerator
miniHda()
{
    return Accelerator::makeHda(
        accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
        {512, 512}, {8.0, 8.0});
}

class SchedulerTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }

    cost::CostModel model;
};

TEST_F(SchedulerTest, ScheduleIsValid)
{
    HeraldScheduler scheduler(model);
    Workload wl = miniWorkload();
    Accelerator acc = miniHda();
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
    EXPECT_EQ(s.entries().size(), wl.totalLayers());
}

TEST_F(SchedulerTest, ValidOnFda)
{
    HeraldScheduler scheduler(model);
    Workload wl = miniWorkload();
    Accelerator acc =
        Accelerator::makeFda(accel::edgeClass(), DataflowStyle::NVDLA);
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
}

TEST_F(SchedulerTest, ValidOnRda)
{
    HeraldScheduler scheduler(model);
    Workload wl = miniWorkload();
    Accelerator acc = Accelerator::makeRda(accel::edgeClass());
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
}

TEST_F(SchedulerTest, ValidOnThreeWayHda)
{
    HeraldScheduler scheduler(model);
    Workload wl = miniWorkload();
    Accelerator acc = Accelerator::makeHda(
        accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao,
         DataflowStyle::Eyeriss},
        {512, 256, 256}, {8.0, 4.0, 4.0});
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
}

TEST_F(SchedulerTest, ExploitsLayerParallelism)
{
    // Two independent FC chains on a 2-way HDA must overlap in time:
    // the makespan is below the serialized sum of durations.
    HeraldScheduler scheduler(model);
    Workload wl = miniWorkload();
    Accelerator acc = miniHda();
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
    double serial = 0.0;
    for (const auto &e : s.entries())
        serial += e.duration();
    EXPECT_LT(s.makespanCycles(), serial * 0.95);
}

TEST_F(SchedulerTest, BothSubAcceleratorsUsed)
{
    HeraldScheduler scheduler(model);
    Workload wl = miniWorkload();
    Accelerator acc = miniHda();
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
    EXPECT_GT(s.busyCycles(0), 0.0);
    EXPECT_GT(s.busyCycles(1), 0.0);
}

TEST_F(SchedulerTest, DataflowPreferenceRoutesLayers)
{
    // With load balancing off, pure preference: the big FCs must go
    // to the NVDLA sub-accelerator, the depthwise layer must not.
    SchedulerOptions opts;
    opts.loadBalance = false;
    opts.postProcess = false;
    HeraldScheduler scheduler(model, opts);
    Workload wl = miniWorkload();
    Accelerator acc = miniHda(); // sub 0: NVDLA, sub 1: ShiDiannao
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
    for (const auto &e : s.entries()) {
        const dnn::Layer &layer =
            wl.modelOf(e.instanceIdx).layer(e.layerIdx);
        if (layer.kind() == dnn::LayerKind::FullyConnected &&
            layer.shape().c >= 1024) {
            EXPECT_EQ(e.accIdx, 0u) << layer.name();
        }
        if (layer.kind() == dnn::LayerKind::DepthwiseConv2D) {
            EXPECT_EQ(e.accIdx, 1u) << layer.name();
        }
    }
}

TEST_F(SchedulerTest, DepthFirstOrderingValid)
{
    SchedulerOptions opts;
    opts.ordering = sched::Ordering::DepthFirst;
    HeraldScheduler scheduler(model, opts);
    Workload wl = miniWorkload();
    Accelerator acc = miniHda();
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
}

TEST_F(SchedulerTest, BreadthFirstInterleavesModels)
{
    // Breadth-first: the first layers of different instances appear
    // before the last layer of the first instance in start order.
    HeraldScheduler scheduler(model);
    Workload wl = miniWorkload();
    Accelerator acc = miniHda();
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
    double first_end_of_inst0 = 0.0;
    double first_start_of_inst3 = 1e300;
    for (const auto &e : s.entries()) {
        if (e.instanceIdx == 0 && e.layerIdx == 0)
            first_end_of_inst0 = e.endCycle;
        if (e.instanceIdx == 3 && e.layerIdx == 0)
            first_start_of_inst3 =
                std::min(first_start_of_inst3, e.startCycle);
    }
    // Instance 3's head is not deferred to the very end.
    EXPECT_LT(first_start_of_inst3,
              s.makespanCycles() - first_end_of_inst0);
}

TEST_F(SchedulerTest, PostProcessingNeverWorsensMakespan)
{
    SchedulerOptions with_pp;
    with_pp.postProcess = true;
    SchedulerOptions without_pp = with_pp;
    without_pp.postProcess = false;

    Workload wl = miniWorkload();
    Accelerator acc = miniHda();
    Schedule a = HeraldScheduler(model, with_pp).schedule(wl, acc);
    Schedule b = HeraldScheduler(model, without_pp).schedule(wl, acc);
    EXPECT_LE(a.makespanCycles(), b.makespanCycles() + 1e-6);
    EXPECT_EQ(a.validate(wl, acc), "");
    EXPECT_EQ(b.validate(wl, acc), "");
}

TEST_F(SchedulerTest, LoadBalanceFactorValidation)
{
    SchedulerOptions opts;
    opts.loadBalanceFactor = 0.5;
    EXPECT_THROW(HeraldScheduler(model, opts), std::runtime_error);
}

TEST_F(SchedulerTest, LoadBalancingTightensMakespan)
{
    // An FC-only workload is single-mindedly NVDLA-greedy; load
    // balancing should spill work to the second sub-accelerator and
    // shorten the makespan.
    Workload wl("fc-only");
    dnn::Model fc_net("FcNet");
    for (int i = 0; i < 6; ++i) {
        fc_net.addLayer(dnn::makeFullyConnected(
            "f" + std::to_string(i), 1024, 1024));
    }
    wl.addModel(std::move(fc_net), 4);

    Accelerator acc = Accelerator::makeHda(
        accel::edgeClass(),
        {DataflowStyle::NVDLA, DataflowStyle::NVDLA}, {512, 512},
        {8.0, 8.0});

    SchedulerOptions balanced;
    balanced.loadBalanceFactor = 1.5;
    SchedulerOptions greedy;
    greedy.loadBalance = false;
    greedy.postProcess = false;

    Schedule a = HeraldScheduler(model, balanced).schedule(wl, acc);
    Schedule b = HeraldScheduler(model, greedy).schedule(wl, acc);
    EXPECT_EQ(a.validate(wl, acc), "");
    EXPECT_EQ(b.validate(wl, acc), "");
    EXPECT_LT(a.makespanCycles(), b.makespanCycles());
}

TEST_F(SchedulerTest, GreedyMatchesHeraldWithFeaturesOff)
{
    SchedulerOptions off;
    off.loadBalance = false;
    off.postProcess = false;
    Workload wl = miniWorkload();
    Accelerator acc = miniHda();
    Schedule a = HeraldScheduler(model, off).schedule(wl, acc);
    Schedule b = sched::GreedyScheduler(model).schedule(wl, acc);
    EXPECT_EQ(a.validate(wl, acc), "");
    EXPECT_EQ(b.validate(wl, acc), "");
    EXPECT_DOUBLE_EQ(a.makespanCycles(), b.makespanCycles());
}

TEST_F(SchedulerTest, HeraldBeatsGreedyOnEdp)
{
    // The paper's scheduler-efficacy claim, on a reduced workload:
    // Herald's schedule has lower (or equal) EDP than the greedy
    // baseline on the same HDA.
    Workload wl("reduced-arvr");
    wl.addModel(dnn::mobileNetV2(), 2);
    wl.addModel(dnn::brqHandposeNet(), 2);
    Accelerator acc = miniHda();

    Schedule h = HeraldScheduler(model).schedule(wl, acc);
    Schedule g = sched::GreedyScheduler(model).schedule(wl, acc);
    EXPECT_EQ(h.validate(wl, acc), "");
    EXPECT_EQ(g.validate(wl, acc), "");
    auto hs = h.finalize(acc, model.energyModel());
    auto gs = g.finalize(acc, model.energyModel());
    EXPECT_LE(hs.edp(), gs.edp() * 1.001);
}

TEST_F(SchedulerTest, ContextChangePenaltyExtendsSchedule)
{
    SchedulerOptions with_penalty;
    with_penalty.contextChangeCycles = 1e5;
    with_penalty.postProcess = false;
    SchedulerOptions without = with_penalty;
    without.contextChangeCycles = 0.0;

    Workload wl = miniWorkload();
    Accelerator acc = miniHda();
    Schedule a =
        HeraldScheduler(model, with_penalty).schedule(wl, acc);
    Schedule b = HeraldScheduler(model, without).schedule(wl, acc);
    EXPECT_GT(a.makespanCycles(), b.makespanCycles());
    EXPECT_EQ(a.validate(wl, acc), "");
    EXPECT_EQ(b.validate(wl, acc), "");
}

TEST_F(SchedulerTest, MemoryConstraintRespectedUnderTinyBuffer)
{
    // Shrink the buffer to force serialization; the schedule must
    // still validate (the checker sweeps occupancy).
    accel::AcceleratorClass tiny = accel::edgeClass();
    tiny.globalBufferBytes = 96ull << 10;
    Accelerator acc = Accelerator::makeHda(
        tiny, {DataflowStyle::NVDLA, DataflowStyle::ShiDiannao},
        {512, 512}, {8.0, 8.0});
    HeraldScheduler scheduler(model);
    Workload wl = miniWorkload();
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
}

TEST_F(SchedulerTest, SummaryAggregatesEnergy)
{
    HeraldScheduler scheduler(model);
    Workload wl = miniWorkload();
    Accelerator acc = miniHda();
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.validate(wl, acc), "");
    auto summary = s.finalize(acc, model.energyModel());
    double dynamic = 0.0;
    for (const auto &e : s.entries())
        dynamic += e.energyUnits;
    // Idle static energy is added on top of the per-layer sums.
    EXPECT_GE(summary.energyUnits, dynamic);
    EXPECT_GT(summary.latencySec, 0.0);
    EXPECT_GT(summary.edp(), 0.0);
    ASSERT_EQ(summary.busyCycles.size(), 2u);
}

TEST_F(SchedulerTest, EmptyWorkload)
{
    HeraldScheduler scheduler(model);
    Workload wl("empty");
    Accelerator acc = miniHda();
    Schedule s = scheduler.schedule(wl, acc);
    EXPECT_EQ(s.entries().size(), 0u);
    EXPECT_DOUBLE_EQ(s.makespanCycles(), 0.0);
}

TEST_F(SchedulerTest, ScheduleValidatorCatchesDependenceViolation)
{
    Workload wl("one");
    dnn::Model m("M");
    m.addLayer(dnn::makeFullyConnected("a", 64, 64));
    m.addLayer(dnn::makeFullyConnected("b", 64, 64));
    wl.addModel(std::move(m), 1);
    Accelerator acc = miniHda();

    Schedule s(acc.numSubAccs());
    sched::ScheduledLayer e0;
    e0.instanceIdx = 0;
    e0.layerIdx = 0;
    e0.accIdx = 0;
    e0.startCycle = 100.0;
    e0.endCycle = 200.0;
    sched::ScheduledLayer e1 = e0;
    e1.layerIdx = 1;
    e1.startCycle = 0.0; // starts before its predecessor ends
    e1.endCycle = 50.0;
    s.add(e0);
    s.add(e1);
    EXPECT_NE(s.validate(wl, acc), "");
}

TEST_F(SchedulerTest, ScheduleValidatorCatchesOverlap)
{
    Workload wl("one");
    dnn::Model m("M");
    m.addLayer(dnn::makeFullyConnected("a", 64, 64));
    m.addLayer(dnn::makeFullyConnected("b", 64, 64));
    wl.addModel(std::move(m), 1);
    Accelerator acc = miniHda();

    Schedule s(acc.numSubAccs());
    sched::ScheduledLayer e0;
    e0.instanceIdx = 0;
    e0.layerIdx = 0;
    e0.accIdx = 0;
    e0.startCycle = 0.0;
    e0.endCycle = 100.0;
    sched::ScheduledLayer e1 = e0;
    e1.layerIdx = 1;
    e1.startCycle = 50.0; // overlaps on the same sub-accelerator
    e1.endCycle = 150.0;
    s.add(e0);
    s.add(e1);
    EXPECT_NE(s.validate(wl, acc), "");
}

TEST_F(SchedulerTest, ScheduleValidatorCatchesMissingLayer)
{
    Workload wl("one");
    dnn::Model m("M");
    m.addLayer(dnn::makeFullyConnected("a", 64, 64));
    m.addLayer(dnn::makeFullyConnected("b", 64, 64));
    wl.addModel(std::move(m), 1);
    Accelerator acc = miniHda();

    Schedule s(acc.numSubAccs());
    sched::ScheduledLayer e0;
    e0.instanceIdx = 0;
    e0.layerIdx = 0;
    e0.accIdx = 0;
    e0.startCycle = 0.0;
    e0.endCycle = 100.0;
    s.add(e0);
    EXPECT_NE(s.validate(wl, acc), "");
}

// Regression for the stale context-penalty bug: the penalty used to
// be baked into a layer's duration at initial assignment and never
// re-examined when post-processing's gap-fill pass reordered entries
// and changed a sub-accelerator's instance adjacency — retimed
// schedules carried penalties where no context switch remained (and
// vice versa). The fix keeps every entry's penalty consistent with
// the actual time-order adjacency; checkContextPenalties() is the
// exact invariant.
TEST_F(SchedulerTest, ContextPenaltyConsistentAfterPostProcess)
{
    const double penalty = 1e4;
    Accelerator hda = miniHda();
    for (const Workload &wl :
         {miniWorkload(), workload::arvrA60fps(3),
          workload::mixedTenantScenario(2)}) {
        for (auto policy : {sched::Policy::Fifo, sched::Policy::Edf,
                            sched::Policy::Lst}) {
            SchedulerOptions opts;
            opts.policy = policy;
            opts.contextChangeCycles = penalty;
            opts.postProcess = true;
            Schedule pp =
                HeraldScheduler(model, opts).schedule(wl, hda);
            EXPECT_EQ(pp.validate(wl, hda), "") << wl.name();
            EXPECT_EQ(sched::checkContextPenalties(pp, penalty), "")
                << wl.name() << "/" << sched::toString(policy);

            // Base (penalty-free) durations must survive the
            // post-processing unchanged: for every (instance, layer)
            // pair, duration minus the carried penalty equals the
            // postProcess-off run's duration minus its penalty.
            SchedulerOptions no_pp = opts;
            no_pp.postProcess = false;
            Schedule raw =
                HeraldScheduler(model, no_pp).schedule(wl, hda);
            EXPECT_EQ(sched::checkContextPenalties(raw, penalty),
                      "")
                << wl.name();
            std::map<std::pair<std::size_t, std::size_t>, double>
                base;
            for (const sched::ScheduledLayer &e : raw.entries()) {
                base[{e.instanceIdx, e.layerIdx}] =
                    e.duration() - e.contextPenaltyCycles;
            }
            for (const sched::ScheduledLayer &e : pp.entries()) {
                auto it = base.find({e.instanceIdx, e.layerIdx});
                ASSERT_NE(it, base.end());
                EXPECT_NEAR(e.duration() - e.contextPenaltyCycles,
                            it->second, 1e-6)
                    << wl.name() << " instance " << e.instanceIdx
                    << " layer " << e.layerIdx;
            }
        }
    }
}

} // namespace
