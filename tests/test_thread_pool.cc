/**
 * @file
 * ThreadPool tests: every index runs exactly once, futures deliver
 * results, exceptions propagate to the caller, and the thread-count
 * knob resolves in the documented precedence order.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace
{

using herald::util::ThreadPool;
using herald::util::resolveThreadCount;

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(0, hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRespectsRange)
{
    ThreadPool pool(2);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(10, 20,
                     [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 145u); // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, [&](std::size_t) { calls.fetch_add(1); });
    pool.parallelFor(7, 3, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SubmitReturnsFutureResult)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ParallelForPropagatesException)
{
    ThreadPool pool(3);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.parallelFor(0, 64,
                         [&](std::size_t i) {
                             if (i == 13)
                                 throw std::runtime_error("boom");
                             completed.fetch_add(1);
                         }),
        std::runtime_error);
    // All non-throwing indices were still consumed.
    EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolTest, ResolveThreadCountPrecedence)
{
    // Explicit request wins.
    EXPECT_EQ(resolveThreadCount(7), 7u);

    // Environment variable is used when the request is 0.
    ASSERT_EQ(setenv("HERALD_THREADS", "3", 1), 0);
    EXPECT_EQ(resolveThreadCount(0), 3u);

    // Garbage / non-positive values fall through to the hardware.
    ASSERT_EQ(setenv("HERALD_THREADS", "nope", 1), 0);
    EXPECT_GE(resolveThreadCount(0), 1u);
    ASSERT_EQ(unsetenv("HERALD_THREADS"), 0);
    EXPECT_GE(resolveThreadCount(0), 1u);
}

TEST(ThreadPoolTest, MalformedThreadEnvFallsBackToHardware)
{
    // The hardware fallback for comparison (explicit requests bypass
    // the environment entirely, so query with it unset).
    ASSERT_EQ(unsetenv("HERALD_THREADS"), 0);
    const std::size_t hw = resolveThreadCount(0);
    ASSERT_GE(hw, 1u);

    // Every malformed, zero, negative, or absurd value must degrade
    // to the hardware default instead of wrapping (strtoul turns
    // "-3" into ~2^64) or spawning a million threads.
    const char *bad[] = {
        "",      "0",          "-3",   "-1",
        "nope",  "8bananas",   "16 x", "0x10",
        "4097",  "1000000",    "99999999999999999999",
        "3.5",   " -2",        "+",
    };
    for (const char *value : bad) {
        ASSERT_EQ(setenv("HERALD_THREADS", value, 1), 0);
        EXPECT_EQ(resolveThreadCount(0), hw)
            << "HERALD_THREADS='" << value << "'";
    }

    // Well-formed values (surrounding whitespace tolerated) win.
    ASSERT_EQ(setenv("HERALD_THREADS", "16", 1), 0);
    EXPECT_EQ(resolveThreadCount(0), 16u);
    ASSERT_EQ(setenv("HERALD_THREADS", "  2", 1), 0);
    EXPECT_EQ(resolveThreadCount(0), 2u);
    ASSERT_EQ(setenv("HERALD_THREADS", "8 ", 1), 0);
    EXPECT_EQ(resolveThreadCount(0), 8u);
    ASSERT_EQ(setenv("HERALD_THREADS", "5\n", 1), 0);
    EXPECT_EQ(resolveThreadCount(0), 5u);
    ASSERT_EQ(setenv("HERALD_THREADS", "4096", 1), 0);
    EXPECT_EQ(resolveThreadCount(0), 4096u);
    ASSERT_EQ(unsetenv("HERALD_THREADS"), 0);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches)
{
    ThreadPool pool(4);
    for (int round = 0; round < 8; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(0, 100,
                         [&](std::size_t) { sum.fetch_add(1); });
        EXPECT_EQ(sum.load(), 100);
    }
}

} // namespace
