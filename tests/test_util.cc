/**
 * @file
 * Unit tests for the util module: math helpers, Pareto extraction,
 * table formatting and the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.hh"
#include "util/math_utils.hh"
#include "util/pareto.hh"
#include "util/table.hh"

namespace
{

using namespace herald::util;

TEST(CeilDiv, ExactDivision)
{
    EXPECT_EQ(ceilDiv(12, 4), 3u);
}

TEST(CeilDiv, RoundsUp)
{
    EXPECT_EQ(ceilDiv(13, 4), 4u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
}

TEST(CeilDiv, ZeroNumerator)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
}

TEST(CeilDiv, ZeroDenominatorPanics)
{
    EXPECT_THROW(ceilDiv(4, 0), std::logic_error);
}

TEST(RoundUp, Basic)
{
    EXPECT_EQ(roundUp(13, 4), 16u);
    EXPECT_EQ(roundUp(16, 4), 16u);
    EXPECT_EQ(roundUp(0, 4), 0u);
}

TEST(Divisors, Twelve)
{
    std::vector<std::uint64_t> expect{1, 2, 3, 4, 6, 12};
    EXPECT_EQ(divisors(12), expect);
}

TEST(Divisors, Prime)
{
    std::vector<std::uint64_t> expect{1, 13};
    EXPECT_EQ(divisors(13), expect);
}

TEST(Divisors, One)
{
    std::vector<std::uint64_t> expect{1};
    EXPECT_EQ(divisors(1), expect);
}

TEST(LargestDivisorAtMost, Basic)
{
    EXPECT_EQ(largestDivisorAtMost(12, 5), 4u);
    EXPECT_EQ(largestDivisorAtMost(12, 12), 12u);
    EXPECT_EQ(largestDivisorAtMost(13, 6), 1u);
}

TEST(BestFactorPair, SaturatesBudget)
{
    // 256 PEs, bounds 64 x 64: should find a full 256 product.
    FactorPair fp = bestFactorPair(256, 64, 64);
    EXPECT_EQ(fp.first * fp.second, 256u);
    EXPECT_LE(fp.first, 64u);
    EXPECT_LE(fp.second, 64u);
}

TEST(BestFactorPair, BoundLimited)
{
    // Bounds 3 x 3 cap the product at 9 regardless of PE budget.
    FactorPair fp = bestFactorPair(256, 3, 3);
    EXPECT_EQ(fp.first, 3u);
    EXPECT_EQ(fp.second, 3u);
}

TEST(BestFactorPair, OneSidedBound)
{
    FactorPair fp = bestFactorPair(16, 16, 1);
    EXPECT_EQ(fp.first, 16u);
    EXPECT_EQ(fp.second, 1u);
}

TEST(BestFactorPair, PrefersBalance)
{
    // 16 PEs with generous bounds: 4x4 beats 16x1 on balance.
    FactorPair fp = bestFactorPair(16, 16, 16);
    EXPECT_EQ(fp.first * fp.second, 16u);
    EXPECT_EQ(fp.first, 4u);
    EXPECT_EQ(fp.second, 4u);
}

TEST(Isqrt, Values)
{
    EXPECT_EQ(isqrt(0), 0u);
    EXPECT_EQ(isqrt(1), 1u);
    EXPECT_EQ(isqrt(15), 3u);
    EXPECT_EQ(isqrt(16), 4u);
    EXPECT_EQ(isqrt(17), 4u);
}

TEST(SplitMix64, Deterministic)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, BoundedRange)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Pareto, Dominance)
{
    DesignPoint a{1.0, 1.0, "a"};
    DesignPoint b{2.0, 2.0, "b"};
    DesignPoint c{1.0, 2.0, "c"};
    EXPECT_TRUE(dominates(a, b));
    EXPECT_TRUE(dominates(a, c));
    EXPECT_FALSE(dominates(b, a));
    EXPECT_FALSE(dominates(a, a));
}

TEST(Pareto, FrontExtraction)
{
    std::vector<DesignPoint> points{
        {3.0, 1.0, "p0"}, {1.0, 3.0, "p1"}, {2.0, 2.0, "p2"},
        {3.0, 3.0, "dominated"}, {2.5, 2.5, "dominated2"}};
    auto front = paretoFront(points);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0].label, "p1");
    EXPECT_EQ(front[1].label, "p2");
    EXPECT_EQ(front[2].label, "p0");
}

TEST(Pareto, FrontSortedByLatency)
{
    std::vector<DesignPoint> points{
        {5.0, 0.5, "x"}, {0.5, 5.0, "y"}, {2.0, 2.0, "z"}};
    auto front = paretoFront(points);
    for (std::size_t i = 1; i < front.size(); ++i)
        EXPECT_LE(front[i - 1].latency, front[i].latency);
}

TEST(Pareto, MinEdp)
{
    std::vector<DesignPoint> points{
        {3.0, 3.0, "nine"}, {1.0, 2.0, "two"}, {4.0, 1.0, "four"}};
    EXPECT_EQ(minEdpIndex(points), 1u);
}

TEST(Pareto, MinEdpEmptyPanics)
{
    std::vector<DesignPoint> points;
    EXPECT_THROW(minEdpIndex(points), std::logic_error);
}

TEST(Table, AlignedOutput)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, ArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Table, Csv)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "x,y\n1,2\n");
}

TEST(Format, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.5, 3), "1.500");
    EXPECT_EQ(fmtDouble(0.0, 2), "0.00");
}

TEST(Format, FmtPercent)
{
    EXPECT_EQ(fmtPercent(-0.653), "-65.3%");
    EXPECT_EQ(fmtPercent(0.05), "+5.0%");
}

TEST(Logging, FatalThrowsRuntimeError)
{
    herald::util::setVerbose(false);
    EXPECT_THROW(herald::util::fatal("user error"),
                 std::runtime_error);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(herald::util::panic("bug"), std::logic_error);
}

TEST(Logging, WarnDoesNotThrow)
{
    EXPECT_NO_THROW(herald::util::warn("just a warning"));
}

} // namespace
