/**
 * @file
 * Unit tests for the workload module: batch expansion, instance
 * independence, and the Table II workload definitions.
 */

#include <gtest/gtest.h>

#include <limits>

#include "dnn/model_zoo.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace
{

using namespace herald;
using workload::Workload;

class WorkloadTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::setVerbose(false); }
};

TEST_F(WorkloadTest, BatchExpansion)
{
    Workload wl("test");
    wl.addModel(dnn::uNet(), 3);
    EXPECT_EQ(wl.numInstances(), 3u);
    EXPECT_EQ(wl.totalLayers(), 3u * dnn::uNet().numLayers());
    EXPECT_EQ(wl.instances()[0].name, "UNet#1");
    EXPECT_EQ(wl.instances()[2].name, "UNet#3");
}

TEST_F(WorkloadTest, InstancesShareSpec)
{
    Workload wl("test");
    wl.addModel(dnn::uNet(), 2);
    EXPECT_EQ(wl.instances()[0].specIdx, wl.instances()[1].specIdx);
    EXPECT_EQ(&wl.modelOf(0), &wl.modelOf(1));
}

TEST_F(WorkloadTest, RejectsZeroBatches)
{
    Workload wl("test");
    EXPECT_THROW(wl.addModel(dnn::uNet(), 0), std::runtime_error);
}

TEST_F(WorkloadTest, RejectsEmptyModel)
{
    Workload wl("test");
    EXPECT_THROW(wl.addModel(dnn::Model("empty"), 1),
                 std::runtime_error);
}

TEST_F(WorkloadTest, OutOfRangeInstancePanics)
{
    Workload wl("test");
    wl.addModel(dnn::uNet(), 1);
    EXPECT_THROW(wl.modelOf(1), std::logic_error);
}

TEST_F(WorkloadTest, ArvrAComposition)
{
    Workload wl = workload::arvrA();
    EXPECT_EQ(wl.name(), "AR/VR-A");
    // Resnet50 x2, UNet x4, MobileNetV2 x4 = 10 instances.
    EXPECT_EQ(wl.numInstances(), 10u);
    EXPECT_EQ(wl.specs().size(), 3u);
    // 2*54 + 4*23 + 4*53 = 412 layers with our zoo geometries
    // (paper: 448 with theirs).
    EXPECT_EQ(wl.totalLayers(), 412u);
}

TEST_F(WorkloadTest, ArvrBComposition)
{
    Workload wl = workload::arvrB();
    // 2+2+4+2+2 = 12 instances over five models.
    EXPECT_EQ(wl.numInstances(), 12u);
    EXPECT_EQ(wl.specs().size(), 5u);
    EXPECT_GT(wl.totalLayers(), workload::arvrA().totalLayers() - 100);
}

TEST_F(WorkloadTest, MlperfComposition)
{
    Workload wl = workload::mlperf();
    EXPECT_EQ(wl.numInstances(), 5u);
    EXPECT_EQ(wl.specs().size(), 5u);
    // Paper reports 181 layers; our zoo is within the same ballpark.
    EXPECT_GT(wl.totalLayers(), 150u);
    EXPECT_LT(wl.totalLayers(), 230u);
}

TEST_F(WorkloadTest, MlperfBatchScaling)
{
    Workload b1 = workload::mlperf(1);
    Workload b8 = workload::mlperf(8);
    EXPECT_EQ(b8.numInstances(), 8u * b1.numInstances());
    EXPECT_EQ(b8.totalLayers(), 8u * b1.totalLayers());
    EXPECT_EQ(b8.totalMacs(), 8u * b1.totalMacs());
    EXPECT_EQ(b8.name(), "MLPerf-b8");
}

TEST_F(WorkloadTest, TotalMacsIsSumOverInstances)
{
    Workload wl("test");
    wl.addModel(dnn::mobileNetV2(), 2);
    EXPECT_EQ(wl.totalMacs(), 2 * dnn::mobileNetV2().totalMacs());
}

TEST_F(WorkloadTest, UniqueModelsDedupAcrossSpecs)
{
    // Two separate addModel/addPeriodicModel calls carrying
    // structurally equal models must share one unique id — that is
    // exactly the frames-of-the-same-model pattern the LayerCostTable
    // relies on.
    Workload wl("test");
    wl.addModel(dnn::mobileNetV2(), 2);
    wl.addPeriodicModel(dnn::mobileNetV2(), 3, 1e6);
    wl.addModel(dnn::uNet(), 1);
    EXPECT_EQ(wl.specs().size(), 3u);
    EXPECT_EQ(wl.numUniqueModels(), 2u);
    EXPECT_EQ(wl.uniqueIdOfSpec(0), wl.uniqueIdOfSpec(1));
    EXPECT_NE(wl.uniqueIdOfSpec(0), wl.uniqueIdOfSpec(2));
    // Every instance maps to its spec's unique id.
    for (std::size_t i = 0; i < wl.numInstances(); ++i) {
        EXPECT_EQ(wl.uniqueIdOfInstance(i),
                  wl.uniqueIdOfSpec(wl.instances()[i].specIdx));
    }
    // The representative model is structurally the right one.
    EXPECT_EQ(wl.uniqueModel(wl.uniqueIdOfSpec(0)).name(),
              dnn::mobileNetV2().name());
    EXPECT_EQ(wl.uniqueModel(wl.uniqueIdOfSpec(2)).name(),
              dnn::uNet().name());
}

TEST_F(WorkloadTest, UniqueModelsDistinguishGeometry)
{
    // Same name, different geometry => distinct unique models.
    Workload wl("test");
    dnn::Model a("M");
    a.addLayer(dnn::makeFullyConnected("f", 128, 128));
    dnn::Model b("M");
    b.addLayer(dnn::makeFullyConnected("f", 256, 128));
    wl.addModel(std::move(a), 1);
    wl.addModel(std::move(b), 1);
    EXPECT_EQ(wl.numUniqueModels(), 2u);
}

TEST_F(WorkloadTest, UniqueModelOutOfRangePanics)
{
    Workload wl("test");
    wl.addModel(dnn::uNet(), 1);
    EXPECT_THROW(wl.uniqueModel(1), std::logic_error);
    EXPECT_THROW(wl.uniqueIdOfSpec(1), std::logic_error);
    EXPECT_THROW(wl.uniqueIdOfInstance(1), std::logic_error);
}

TEST_F(WorkloadTest, RejectsNonFiniteRealtimeParameters)
{
    // NaN slips through ordered comparisons (NaN < 0 is false), so
    // the guards must check finiteness explicitly — a NaN arrival
    // or deadline would silently poison every release/slack
    // computation downstream.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    Workload wl("test");
    EXPECT_THROW(wl.addModel(dnn::uNet(), 1, nan),
                 std::runtime_error);
    EXPECT_THROW(wl.addModel(dnn::uNet(), 1, inf),
                 std::runtime_error);
    EXPECT_THROW(wl.addModel(dnn::uNet(), 1, 0.0, nan),
                 std::runtime_error);
    EXPECT_THROW(wl.addPeriodicModel(dnn::uNet(), 1, nan),
                 std::runtime_error);
    EXPECT_THROW(wl.addPeriodicModel(dnn::uNet(), 1, inf),
                 std::runtime_error);
    EXPECT_THROW(wl.addPeriodicModel(dnn::uNet(), 1, 1e6, nan),
                 std::runtime_error);
    EXPECT_THROW(wl.addPeriodicModel(dnn::uNet(), 1, 1e6, -1.0),
                 std::runtime_error);
    EXPECT_THROW(wl.addPeriodicModel(dnn::uNet(), 1, 1e6, 0.0, nan),
                 std::runtime_error);
    EXPECT_THROW(wl.addPeriodicModel(dnn::uNet(), 1, 1e6, 0.0, -5.0),
                 std::runtime_error);
    EXPECT_THROW(workload::fpsPeriodCycles(nan), std::runtime_error);
    EXPECT_THROW(workload::fpsPeriodCycles(inf), std::runtime_error);
    EXPECT_THROW(workload::fpsPeriodCycles(60.0, nan),
                 std::runtime_error);
    // Nothing was added by any rejected call.
    EXPECT_EQ(wl.numInstances(), 0u);
}

TEST_F(WorkloadTest, FaultedFactoryComposition)
{
    Workload wl = workload::faultedFactory(4);
    EXPECT_EQ(wl.name(), "factory-faulted");
    // 4 + 2 + 1 periodic instances plus one best-effort frame.
    EXPECT_EQ(wl.numInstances(), 8u);
    EXPECT_TRUE(wl.hasArrivals());
    EXPECT_TRUE(wl.hasDeadlines());
    // The best-effort instance has no deadline.
    EXPECT_FALSE(wl.instances().back().hasDeadline());
    EXPECT_THROW(workload::faultedFactory(0), std::runtime_error);
}

TEST_F(WorkloadTest, PeriodicExpansionGuardsCycleOverflow)
{
    // With the implicit one-period deadline, frame K-1 of a
    // period-P stream carries deadline K * P; K * 1e15 crosses the
    // 2^53-cycle limit between K = 9 (9e15, representable) and
    // K = 10 (1e16, past it). The guard must cut exactly there —
    // beyond 2^53 consecutive doubles stop being consecutive
    // integers and arrival arithmetic silently loses cycles.
    Workload ok("edge");
    ok.addPeriodicModel(dnn::mobileNetV2(), 9, 1e15);
    EXPECT_EQ(ok.numInstances(), 9u);
    EXPECT_DOUBLE_EQ(ok.instances().back().deadlineCycle, 9e15);

    Workload over("over");
    EXPECT_THROW(over.addPeriodicModel(dnn::mobileNetV2(), 10, 1e15),
                 std::runtime_error);

    // Same limit on the aperiodic path (arrival + deadline).
    Workload ap("ap");
    EXPECT_THROW(ap.addModel(dnn::mobileNetV2(), 1, 8e15, 2e15),
                 std::runtime_error);
    ap.addModel(dnn::mobileNetV2(), 1, 8e15, 1e15);
    EXPECT_EQ(ap.numInstances(), 1u);
}

TEST_F(WorkloadTest, FpsPeriodCyclesGuardsDegenerateRates)
{
    EXPECT_GT(workload::fpsPeriodCycles(30.0, 1.0), 0.0);
    // An fps so small the period overflows the cycle limit.
    EXPECT_THROW(workload::fpsPeriodCycles(1e-10, 1.0),
                 std::runtime_error);
    EXPECT_THROW(workload::fpsPeriodCycles(0.0, 1.0),
                 std::runtime_error);
    EXPECT_THROW(workload::fpsPeriodCycles(30.0, -1.0),
                 std::runtime_error);
}

TEST_F(WorkloadTest, CachedTotalsMatchInstanceSums)
{
    Workload wl("test");
    wl.addModel(dnn::resnet50(), 2);
    wl.addPeriodicModel(dnn::mobileNetV2(), 4, 1e6);
    std::size_t layers = 0;
    std::uint64_t macs = 0;
    for (std::size_t i = 0; i < wl.numInstances(); ++i) {
        layers += wl.modelOf(i).numLayers();
        macs += wl.modelOf(i).totalMacs();
    }
    EXPECT_EQ(wl.totalLayers(), layers);
    EXPECT_EQ(wl.totalMacs(), macs);
}

} // namespace
