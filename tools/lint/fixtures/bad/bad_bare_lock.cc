// Negative fixture: raw lock()/unlock() instead of an RAII guard.
#include <mutex>

namespace
{
std::mutex gate;
int shared_value = 0;
} // namespace

int
bumpUnsafely()
{
    gate.lock();
    int v = ++shared_value;
    gate.unlock();
    return v;
}
