// Negative fixture: header with no #pragma once, a header-scope
// using-namespace, and a mutable namespace-scope global.
#include <string>

using namespace std;

namespace badfixture
{

int call_count = 0;

string describe();

} // namespace badfixture
