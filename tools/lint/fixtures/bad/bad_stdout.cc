// Negative fixture: library code writing to stdout instead of
// util/logging. Linted with --all-paths (in-tree scope: src/).
#include <cstdio>
#include <iostream>

void
chatty(int n)
{
    std::cout << "scheduled " << n << " layers\n";
    std::printf("done\n");
}
