// Negative fixture: malformed herald-lint directives. A typo'd rule
// name or a bare allow() must not silently disable anything.
#include <mutex>

namespace
{
std::mutex gate;
} // namespace

void
takeBoth()
{
    // herald-lint: allow(no-bear-lock): typo'd rule name
    gate.lock();
    gate.unlock(); // herald-lint: allow(no-bare-lock)
}
