// Negative fixture: herald_lint must flag both iteration styles.
// Linted with --all-paths (in-tree scope: src/sched, src/dse).
#include <cstdio>
#include <string>
#include <unordered_map>

int
sumAll()
{
    std::unordered_map<std::string, int> costs;
    costs["conv1"] = 3;
    int total = 0;
    for (const auto &kv : costs)
        total += kv.second;
    for (auto it = costs.begin(); it != costs.end(); ++it)
        total += it->second;
    return total;
}
