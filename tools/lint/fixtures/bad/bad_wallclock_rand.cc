// Negative fixture: every wall-clock / hidden-state entropy source
// herald_lint bans from libherald. Linted with --all-paths.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned long
entropySoup()
{
    unsigned long x = static_cast<unsigned long>(rand());
    std::random_device rd;
    x += rd();
    x += static_cast<unsigned long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    x += static_cast<unsigned long>(time(nullptr));
    return x;
}
