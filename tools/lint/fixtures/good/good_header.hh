/**
 * Positive fixture: a hygienic header. Must stay clean even under
 * --all-paths.
 */
#pragma once

#include <string>

namespace goodfixture
{

constexpr int kMaxRetries = 3;
extern int externally_owned_counter;

std::string describe();

inline int
timesTwo(int v)
{
    // Function-local using-namespace does not leak into includers.
    using namespace std::string_literals;
    return v * 2;
}

} // namespace goodfixture
