// Positive fixture: the approved counterparts to everything the bad
// fixtures do. Must stay clean even under --all-paths.
#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace
{
std::mutex gate;
int shared_value = 0;
} // namespace

/** Seeded splitmix64: the only sanctioned entropy source. */
std::uint64_t
nextRandom(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

int
sumDeterministically()
{
    std::unordered_map<std::string, int> costs;
    costs["conv1"] = 3;

    // Lookups into an unordered map are fine; only iteration is not.
    int total = costs.count("conv1") ? costs.at("conv1") : 0;

    // Iterate a sorted materialization when order can reach results.
    std::vector<std::pair<std::string, int>> rows(costs.begin(),
                                                  costs.end());
    std::sort(rows.begin(), rows.end());
    for (const auto &kv : rows)
        total += kv.second;
    return total;
}

// A justified suppression keeps a reviewed exception visible: this
// loop only accumulates into a commutative sum, so visit order never
// reaches the result.
int
sumCommutatively(const std::unordered_map<int, int> &histogram)
{
    int total = 0;
    // herald-lint: allow(no-unordered-iteration): commutative integer
    for (const auto &kv : histogram)
        total += kv.second;
    return total;
}

int
bumpSafely()
{
    std::lock_guard<std::mutex> hold(gate);
    return ++shared_value;
}
