/**
 * @file
 * herald_lint CLI: scan source trees for determinism-contract
 * violations.
 *
 *   herald_lint [--root DIR] [--all-paths] --check PATH [PATH...]
 *   herald_lint --list-rules
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
 */
#include "lint_core.hh"

#include <cstdio>
#include <string>
#include <vector>

namespace
{

void
usage(std::FILE *to)
{
    std::fprintf(to,
                 "usage: herald_lint [--root DIR] [--all-paths] "
                 "--check PATH [PATH...]\n"
                 "       herald_lint --list-rules\n"
                 "\n"
                 "  --root DIR    resolve PATHs relative to DIR "
                 "(default: .)\n"
                 "  --all-paths   run every rule on every file, "
                 "ignoring path scoping\n"
                 "  --check       lint the given files/directories "
                 "(recursive)\n"
                 "  --list-rules  print the rule list as "
                 "name<TAB>scope<TAB>description\n"
                 "\n"
                 "Suppress a finding with a justified comment on the "
                 "offending line\nor the line above:\n"
                 "  // herald-lint: allow(<rule>): <justification>\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    bool allPaths = false;
    bool check = false;
    bool listRules = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "herald_lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--all-paths") {
            allPaths = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "herald_lint: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const herald::lint::RuleInfo &r : herald::lint::ruleList())
            std::printf("%s\t%s\t%s\n", r.name, r.scope, r.description);
        return 0;
    }
    if (!check || paths.empty()) {
        usage(stderr);
        return 2;
    }

    herald::lint::Options opts;
    opts.allPaths = allPaths;
    std::vector<std::string> errors;
    std::vector<herald::lint::Diagnostic> diags =
        herald::lint::lintPaths(root, paths, opts, errors);

    for (const herald::lint::Diagnostic &d : diags)
        std::printf("%s\n", herald::lint::formatDiagnostic(d).c_str());
    for (const std::string &e : errors)
        std::fprintf(stderr, "herald_lint: error: %s\n", e.c_str());

    if (!errors.empty())
        return 2;
    if (!diags.empty()) {
        std::fprintf(stderr,
                     "herald_lint: %zu finding(s); suppress a justified "
                     "false positive with\n"
                     "  // herald-lint: allow(<rule>): <reason>\n",
                     diags.size());
        return 1;
    }
    return 0;
}
