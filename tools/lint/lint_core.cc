#include "lint_core.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace herald::lint
{

namespace
{

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"no-unordered-iteration", "src/accel src/sched src/dse",
     "range-for or .begin() iteration over unordered_map/unordered_set "
     "in result-affecting paths; iterate a sorted materialization or "
     "justify why order cannot reach results"},
    {"no-wallclock-rand", "src/",
     "rand()/srand(), std::random_device, time()/clock()/gettimeofday, "
     "and std::chrono::*_clock::now() are banned in libherald; only "
     "seeded splitmix64 keeps runs reproducible"},
    {"no-bare-lock", "*",
     "raw .lock()/.unlock() calls; use std::lock_guard, "
     "std::unique_lock, or std::scoped_lock so unlock survives "
     "exceptions and early returns"},
    {"no-stdout-in-lib", "src/",
     "std::cout/printf/puts in the library; route status through "
     "util/logging so benches and servers can silence or redirect it"},
    {"header-hygiene", "headers",
     "#pragma once present, no `using namespace` at header scope, no "
     "mutable (non-const) namespace-scope globals in headers"},
    {"bad-suppression", "*",
     "meta-rule: a herald-lint allow() naming an unknown rule or "
     "missing its justification"},
};

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Tok
{
    Ident,
    Number,
    Punct,
    Str,
    Chr,
};

struct Token
{
    Tok kind;
    std::string text;
    std::size_t line;
};

struct ScanResult
{
    std::vector<Token> toks;
    /// line -> rules allowed on that line (and emitted there)
    std::map<std::size_t, std::set<std::string>> allows;
    /// preprocessor directives: (first line, joined text)
    std::vector<std::pair<std::size_t, std::string>> directives;
    /// malformed allow() comments, reported under bad-suppression
    std::vector<Diagnostic> suppressionDiags;
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Parse every `herald-lint: allow(...)` directive inside one comment.
 * The allowance covers each line the comment spans plus the line
 * below the comment's end, so both trailing and line-above styles
 * work. Unknown rules and missing justifications become findings.
 */
void
parseSuppressions(const std::string &comment, std::size_t firstLine,
                  std::size_t lastLine, ScanResult &res)
{
    const std::string marker = "herald-lint:";
    std::size_t pos = 0;
    while ((pos = comment.find(marker, pos)) != std::string::npos) {
        pos += marker.size();
        std::size_t cursor = pos;
        while (cursor < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[cursor])))
            ++cursor;
        const std::string verb = "allow";
        if (comment.compare(cursor, verb.size(), verb) != 0 ||
            comment[cursor + verb.size()] != '(') {
            res.suppressionDiags.push_back(
                {"", firstLine, "bad-suppression",
                 "herald-lint directive is not of the form "
                 "allow(<rule>[, <rule>...]): <justification>"});
            continue;
        }
        cursor += verb.size() + 1;
        std::size_t close = comment.find(')', cursor);
        if (close == std::string::npos) {
            res.suppressionDiags.push_back(
                {"", firstLine, "bad-suppression",
                 "unterminated allow( in herald-lint directive"});
            break;
        }
        // Split the rule list on commas/whitespace.
        std::string list = comment.substr(cursor, close - cursor);
        std::vector<std::string> names;
        std::string cur;
        for (char c : list) {
            if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
                if (!cur.empty())
                    names.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (!cur.empty())
            names.push_back(cur);

        // Justification: non-whitespace text after ")" (a leading
        // ':' or '-' separator is conventional but not required).
        std::size_t after = close + 1;
        while (after < comment.size() &&
               (std::isspace(static_cast<unsigned char>(comment[after])) ||
                comment[after] == ':' || comment[after] == '-'))
            ++after;
        bool justified = after < comment.size();

        if (names.empty()) {
            res.suppressionDiags.push_back(
                {"", firstLine, "bad-suppression",
                 "allow() lists no rules"});
        }
        for (const std::string &name : names) {
            if (!knownRule(name)) {
                res.suppressionDiags.push_back(
                    {"", firstLine, "bad-suppression",
                     "allow(" + name + ") names an unknown rule"});
                continue;
            }
            if (!justified) {
                res.suppressionDiags.push_back(
                    {"", firstLine, "bad-suppression",
                     "allow(" + name + ") needs a justification after "
                     "the closing parenthesis"});
                continue;
            }
            for (std::size_t l = firstLine; l <= lastLine + 1; ++l)
                res.allows[l].insert(name);
        }
        pos = close;
    }
}

/**
 * Tokenize C++ source. Comments are consumed (mined for
 * suppressions), string/char literals become opaque tokens (raw
 * strings included, so test fixtures embedded in string literals
 * never trip rules), and preprocessor directives are captured whole
 * with their backslash continuations.
 */
ScanResult
scan(const std::string &src)
{
    ScanResult res;
    std::size_t i = 0;
    std::size_t line = 1;
    const std::size_t n = src.size();
    bool atLineStart = true;

    auto peek = [&](std::size_t k) -> char {
        return i + k < n ? src[i + k] : '\0';
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor directive: consume the logical line.
        if (c == '#' && atLineStart) {
            std::size_t startLine = line;
            std::string text;
            while (i < n) {
                if (src[i] == '\\' && peek(1) == '\n') {
                    text += ' ';
                    i += 2;
                    ++line;
                    continue;
                }
                if (src[i] == '\n')
                    break;
                text += src[i];
                ++i;
            }
            res.directives.emplace_back(startLine, text);
            continue;
        }
        atLineStart = false;
        // Line comment.
        if (c == '/' && peek(1) == '/') {
            std::size_t startLine = line;
            std::string text;
            i += 2;
            while (i < n && src[i] != '\n') {
                text += src[i];
                ++i;
            }
            parseSuppressions(text, startLine, startLine, res);
            continue;
        }
        // Block comment.
        if (c == '/' && peek(1) == '*') {
            std::size_t startLine = line;
            std::string text;
            i += 2;
            while (i < n && !(src[i] == '*' && peek(1) == '/')) {
                if (src[i] == '\n')
                    ++line;
                text += src[i];
                ++i;
            }
            i = std::min(i + 2, n);
            parseSuppressions(text, startLine, line, res);
            continue;
        }
        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && peek(1) == '"') {
            std::size_t d = i + 2;
            std::string delim;
            while (d < n && src[d] != '(' && src[d] != '\n')
                delim += src[d++];
            if (d < n && src[d] == '(') {
                std::string close = ")" + delim + "\"";
                std::size_t end = src.find(close, d + 1);
                std::size_t stop = end == std::string::npos
                                       ? n : end + close.size();
                res.toks.push_back({Tok::Str, "<raw>", line});
                for (std::size_t k = i; k < stop; ++k)
                    if (src[k] == '\n')
                        ++line;
                i = stop;
                continue;
            }
        }
        // String literal.
        if (c == '"') {
            res.toks.push_back({Tok::Str, "<str>", line});
            ++i;
            while (i < n && src[i] != '"') {
                if (src[i] == '\\' && i + 1 < n)
                    ++i;
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            ++i;
            continue;
        }
        // Char literal (digit separators are consumed by the number
        // path below, so a bare ' here really opens a char literal).
        if (c == '\'') {
            res.toks.push_back({Tok::Chr, "<chr>", line});
            ++i;
            while (i < n && src[i] != '\'') {
                if (src[i] == '\\' && i + 1 < n)
                    ++i;
                ++i;
            }
            ++i;
            continue;
        }
        // Number (handles 1'000'000, 0x1p3, 1e-9).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            std::size_t start = i;
            ++i;
            while (i < n) {
                char d = src[i];
                if (identChar(d) || d == '.') {
                    ++i;
                } else if (d == '\'' && identChar(peek(1))) {
                    i += 2;
                } else if ((d == '+' || d == '-') &&
                           (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                            src[i - 1] == 'p' || src[i - 1] == 'P')) {
                    ++i;
                } else {
                    break;
                }
            }
            res.toks.push_back({Tok::Number, src.substr(start, i - start),
                                line});
            continue;
        }
        // Identifier.
        if (identChar(c)) {
            std::size_t start = i;
            while (i < n && identChar(src[i]))
                ++i;
            res.toks.push_back({Tok::Ident, src.substr(start, i - start),
                                line});
            continue;
        }
        // Punctuation. '::' and '->' matter to the rules directly;
        // comparison/compound-assignment operators must not decay
        // into a bare '=' (or `operator==` reads as an initializer).
        // '<', '>', '<<', '>>' stay single-char so template argument
        // depth tracking keeps working on `map<int, vector<int>>`.
        if (c == ':' && peek(1) == ':') {
            res.toks.push_back({Tok::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && peek(1) == '>') {
            res.toks.push_back({Tok::Punct, "->", line});
            i += 2;
            continue;
        }
        if (peek(1) == '=' && (c == '=' || c == '!' || c == '<' ||
                               c == '>' || c == '+' || c == '-' ||
                               c == '*' || c == '/' || c == '%' ||
                               c == '&' || c == '|' || c == '^')) {
            res.toks.push_back({Tok::Punct, std::string{c, '='}, line});
            i += 2;
            continue;
        }
        if ((c == '&' && peek(1) == '&') || (c == '|' && peek(1) == '|') ||
            (c == '+' && peek(1) == '+') || (c == '-' && peek(1) == '-')) {
            res.toks.push_back({Tok::Punct, std::string{c, peek(1)}, line});
            i += 2;
            continue;
        }
        res.toks.push_back({Tok::Punct, std::string(1, c), line});
        ++i;
    }
    return res;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
isHeaderPath(const std::string &path)
{
    auto ends = [&](const char *suf) {
        std::string s(suf);
        return path.size() >= s.size() &&
               path.compare(path.size() - s.size(), s.size(), s) == 0;
    };
    return ends(".hh") || ends(".h") || ends(".hpp");
}

struct RuleScope
{
    bool unorderedIteration;
    bool wallclockRand;
    bool bareLock;
    bool stdoutInLib;
    bool headerHygiene;
};

RuleScope
scopeFor(const std::string &path, const Options &opts)
{
    RuleScope s;
    bool inLib = startsWith(path, "src/");
    s.unorderedIteration = opts.allPaths ||
                           startsWith(path, "src/accel") ||
                           startsWith(path, "src/sched") ||
                           startsWith(path, "src/dse");
    s.wallclockRand = opts.allPaths || inLib;
    s.bareLock = true;
    s.stdoutInLib = opts.allPaths || inLib;
    s.headerHygiene = isHeaderPath(path);
    return s;
}

// ---------------------------------------------------------------------------
// Rule passes over the token stream
// ---------------------------------------------------------------------------

struct Emitter
{
    const std::string &path;
    const ScanResult &scanRes;
    std::vector<Diagnostic> &out;

    void
    emit(const std::string &rule, std::size_t line,
         const std::string &message)
    {
        auto it = scanRes.allows.find(line);
        if (it != scanRes.allows.end() && it->second.count(rule))
            return;
        out.push_back({path, line, rule, message});
    }
};

/** Token text or "" past the end. */
const std::string &
textAt(const std::vector<Token> &t, std::size_t i)
{
    static const std::string empty;
    return i < t.size() ? t[i].text : empty;
}

bool
isIdent(const std::vector<Token> &t, std::size_t i)
{
    return i < t.size() && t[i].kind == Tok::Ident;
}

/**
 * Collect names declared with an unordered container type:
 * `std::unordered_map<K, V> name` (references, pointers, and class
 * members included — the declaration and the loop only need to share
 * a file for the heuristic to see both).
 */
std::set<std::string>
collectUnorderedVars(const std::vector<Token> &toks)
{
    std::set<std::string> vars;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident ||
            (toks[i].text != "unordered_map" &&
             toks[i].text != "unordered_set" &&
             toks[i].text != "unordered_multimap" &&
             toks[i].text != "unordered_multiset"))
            continue;
        std::size_t j = i + 1;
        if (textAt(toks, j) != "<")
            continue;
        int depth = 0;
        while (j < toks.size()) {
            if (toks[j].text == "<")
                ++depth;
            else if (toks[j].text == ">")
                --depth;
            ++j;
            if (depth == 0)
                break;
        }
        while (j < toks.size() && (toks[j].text == "&" ||
                                   toks[j].text == "*" ||
                                   toks[j].text == "const"))
            ++j;
        if (isIdent(toks, j))
            vars.insert(toks[j].text);
    }
    return vars;
}

void
checkUnorderedIteration(const std::vector<Token> &toks, Emitter &em)
{
    const std::set<std::string> vars = collectUnorderedVars(toks);
    const char *rule = "no-unordered-iteration";

    // Token spans of for/while loop headers: a .begin() inside one is
    // an iteration; a .begin() elsewhere is usually the approved
    // sorted-materialization idiom (vector v(u.begin(), u.end())).
    std::vector<std::pair<std::size_t, std::size_t>> loopHeaders;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind == Tok::Ident &&
            (toks[i].text == "for" || toks[i].text == "while") &&
            toks[i + 1].text == "(") {
            int depth = 0;
            std::size_t j = i + 1;
            while (j < toks.size()) {
                if (toks[j].text == "(")
                    ++depth;
                else if (toks[j].text == ")" && --depth == 0)
                    break;
                ++j;
            }
            loopHeaders.emplace_back(i + 1, j);
        }
    }
    auto inLoopHeader = [&](std::size_t idx) {
        for (const auto &[lo, hi] : loopHeaders)
            if (idx >= lo && idx <= hi)
                return true;
        return false;
    };

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        // Range-for whose range expression names an unordered
        // container outside any call's argument list.
        if (toks[i].kind == Tok::Ident && toks[i].text == "for" &&
            toks[i + 1].text == "(") {
            std::size_t j = i + 1;
            int depth = 0;
            std::size_t colon = 0;
            std::size_t close = 0;
            while (j < toks.size()) {
                if (toks[j].text == "(") {
                    ++depth;
                } else if (toks[j].text == ")") {
                    --depth;
                    if (depth == 0) {
                        close = j;
                        break;
                    }
                } else if (toks[j].text == ":" && depth == 1 && !colon) {
                    colon = j;
                }
                ++j;
            }
            if (!colon || !close)
                continue;
            int callDepth = 0;
            for (std::size_t k = colon + 1; k < close; ++k) {
                if (toks[k].text == "(") {
                    ++callDepth;
                } else if (toks[k].text == ")") {
                    --callDepth;
                } else if (callDepth == 0 && toks[k].kind == Tok::Ident &&
                           textAt(toks, k + 1) != "(") {
                    bool hit = vars.count(toks[k].text) ||
                               toks[k].text == "unordered_map" ||
                               toks[k].text == "unordered_set" ||
                               toks[k].text == "unordered_multimap" ||
                               toks[k].text == "unordered_multiset";
                    if (hit) {
                        em.emit(rule, toks[k].line,
                                "range-for over unordered container '" +
                                    toks[k].text +
                                    "'; iteration order is "
                                    "implementation-defined — iterate a "
                                    "sorted materialization instead");
                        break;
                    }
                }
            }
        }
        // Explicit iterator loop: u.begin() / u.cbegin() on a known
        // unordered variable inside a loop header.
        if (inLoopHeader(i) &&
            toks[i].kind == Tok::Ident && vars.count(toks[i].text) &&
            (textAt(toks, i + 1) == "." || textAt(toks, i + 1) == "->") &&
            (textAt(toks, i + 2) == "begin" ||
             textAt(toks, i + 2) == "cbegin") &&
            textAt(toks, i + 3) == "(") {
            em.emit(rule, toks[i].line,
                    "iterator walk over unordered container '" +
                        toks[i].text +
                        "'; iteration order is implementation-defined");
        }
    }
}

void
checkWallclockRand(const std::vector<Token> &toks, Emitter &em)
{
    const char *rule = "no-wallclock-rand";
    const std::set<std::string> clockNames = {
        "steady_clock", "system_clock", "high_resolution_clock"};
    const std::set<std::string> nullishArgs = {"NULL", "nullptr", "0"};

    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident)
            continue;
        const std::string &t = toks[i].text;
        const std::string &prev = i ? toks[i - 1].text : textAt(toks, toks.size());
        bool memberCall = prev == "." || prev == "->";
        bool qualified = prev == "::";
        bool stdQualified =
            qualified && i >= 2 && toks[i - 2].text == "std";
        // foo::rand() is somebody else's function, std::rand() is
        // libc's. Clock types keep their own qualifier (std::chrono::
        // steady_clock), so the guard only applies to libc names.
        bool foreignQualified = qualified && !stdQualified;

        if ((t == "rand" || t == "srand") && !memberCall &&
            !foreignQualified &&
            textAt(toks, i + 1) == "(") {
            em.emit(rule, toks[i].line,
                    t + "() draws from hidden global state; use the "
                    "seeded splitmix64 helpers instead");
        } else if (t == "random_device" && !memberCall) {
            em.emit(rule, toks[i].line,
                    "std::random_device is non-deterministic; seed "
                    "splitmix64 with a fixed value instead");
        } else if (clockNames.count(t) && textAt(toks, i + 1) == "::" &&
                   textAt(toks, i + 2) == "now") {
            em.emit(rule, toks[i].line,
                    "std::chrono::" + t + "::now() reads the wall "
                    "clock; results must not depend on real time");
        } else if ((t == "gettimeofday" || t == "clock_gettime") &&
                   !memberCall && !foreignQualified &&
                   textAt(toks, i + 1) == "(") {
            em.emit(rule, toks[i].line,
                    t + "() reads the wall clock; results must not "
                    "depend on real time");
        } else if ((t == "time" || t == "clock") && !memberCall &&
                   !foreignQualified && textAt(toks, i + 1) == "(") {
            // Only the libc zero-arg/out-param forms: time(NULL),
            // time(0), time(&t), clock(). Anything with a real
            // argument expression is somebody's own function.
            const std::string &arg = textAt(toks, i + 2);
            if (arg == ")" || arg == "&" || nullishArgs.count(arg)) {
                em.emit(rule, toks[i].line,
                        t + "() reads the wall clock; results must "
                        "not depend on real time");
            }
        }
    }
}

void
checkBareLock(const std::vector<Token> &toks, Emitter &em)
{
    const char *rule = "no-bare-lock";
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if ((toks[i].text == "." || toks[i].text == "->") &&
            (textAt(toks, i + 1) == "lock" ||
             textAt(toks, i + 1) == "unlock") &&
            textAt(toks, i + 2) == "(" && textAt(toks, i + 3) == ")") {
            em.emit(rule, toks[i + 1].line,
                    "raw ." + toks[i + 1].text +
                        "() call; hold mutexes via std::lock_guard / "
                        "std::unique_lock / std::scoped_lock");
        }
    }
}

void
checkStdoutInLib(const std::vector<Token> &toks, Emitter &em)
{
    const char *rule = "no-stdout-in-lib";
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident)
            continue;
        const std::string &t = toks[i].text;
        const std::string &prev = i ? toks[i - 1].text : textAt(toks, toks.size());
        if (prev == "." || prev == "->")
            continue;   // member named cout/printf on some object
        if (t == "cout") {
            em.emit(rule, toks[i].line,
                    "std::cout in the library; report through "
                    "util/logging (inform/warn) instead");
        } else if ((t == "printf" || t == "puts" || t == "putchar") &&
                   textAt(toks, i + 1) == "(") {
            em.emit(rule, toks[i].line,
                    t + "() writes to stdout from the library; report "
                    "through util/logging instead");
        } else if (t == "fprintf" && textAt(toks, i + 1) == "(" &&
                   textAt(toks, i + 2) == "stdout") {
            em.emit(rule, toks[i].line,
                    "fprintf(stdout, ...) from the library; report "
                    "through util/logging instead");
        }
    }
}

/**
 * Header hygiene. Scope tracking classifies every `{` by looking back
 * over the current statement: a window containing `namespace` (or an
 * extern "C" linkage block) opens namespace scope, `class`/`struct`/
 * `enum`/`union` without parentheses opens a type body, everything
 * else (function bodies, initializers, lambdas) is opaque. "Header
 * scope" means every enclosing brace is a namespace.
 */
void
checkHeaderHygiene(const std::vector<Token> &toks,
                   const std::vector<std::pair<std::size_t, std::string>>
                       &directives,
                   Emitter &em)
{
    const char *rule = "header-hygiene";

    bool pragmaOnce = false;
    for (const auto &[dirLine, text] : directives) {
        std::istringstream iss(text);
        std::string hash, word1, word2;
        iss >> hash >> word1 >> word2;
        if (hash == "#" ) {
            // "#  pragma once" — '#' separated from the keyword.
            if (word1 == "pragma" && word2 == "once")
                pragmaOnce = true;
        } else if (startsWith(hash, "#")) {
            if (hash == "#pragma" && word1 == "once")
                pragmaOnce = true;
        }
    }
    if (!pragmaOnce)
        em.emit(rule, 1, "header is missing #pragma once");

    enum class Scope
    {
        Namespace,
        Type,
        Other,
    };
    std::vector<Scope> stack;
    auto atNamespaceScope = [&]() {
        for (Scope s : stack)
            if (s != Scope::Namespace)
                return false;
        return true;
    };

    std::size_t stmtStart = 0;   // first token of the current statement
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;

        if (t == "{") {
            // Classify by the statement tokens before this brace.
            Scope kind = Scope::Other;
            bool sawParen = false;
            bool sawType = false;
            bool sawNamespace = false;
            bool sawAssign = false;
            for (std::size_t k = stmtStart; k < i; ++k) {
                const std::string &w = toks[k].text;
                if (w == "(" || w == ")")
                    sawParen = true;
                else if (w == "=")
                    sawAssign = true;
                else if (w == "namespace")
                    sawNamespace = true;
                else if (w == "class" || w == "struct" || w == "union" ||
                         w == "enum")
                    sawType = true;
            }
            if (sawNamespace && !sawAssign)
                kind = Scope::Namespace;
            else if (sawType && !sawParen && !sawAssign)
                kind = Scope::Type;
            stack.push_back(kind);
            stmtStart = i + 1;
            continue;
        }
        if (t == "}") {
            if (!stack.empty())
                stack.pop_back();
            stmtStart = i + 1;
            continue;
        }
        if (t == ";") {
            stmtStart = i + 1;
            continue;
        }

        // `using namespace` with only namespace braces around it.
        if (toks[i].kind == Tok::Ident && t == "using" &&
            textAt(toks, i + 1) == "namespace" && atNamespaceScope()) {
            em.emit(rule, toks[i].line,
                    "using-namespace at header scope leaks into every "
                    "includer; qualify names or scope the using to a "
                    "function body");
        }

        // Mutable namespace-scope global: a simple declaration
        // statement at namespace scope with an initializer (or a bare
        // two-identifier declaration) and no const/constexpr.
        if (i == stmtStart && atNamespaceScope() &&
            toks[i].kind == Tok::Ident) {
            static const std::set<std::string> skipLead = {
                "using", "typedef", "static_assert", "template",
                "extern", "friend", "namespace", "class", "struct",
                "enum", "union", "operator", "public", "private",
                "protected",
            };
            if (skipLead.count(t))
                continue;
            // Collect the statement; bail if it opens a scope.
            std::size_t end = i;
            int parens = 0;
            bool sawParenTop = false;
            std::size_t assign = 0;
            bool opensScope = false;
            for (; end < toks.size(); ++end) {
                const std::string &w = toks[end].text;
                if (w == "(") {
                    if (parens == 0 && !assign)
                        sawParenTop = true;
                    ++parens;
                } else if (w == ")") {
                    --parens;
                } else if (w == "{" && parens == 0) {
                    opensScope = true;
                    break;
                } else if (w == "=" && parens == 0 && !assign) {
                    assign = end;
                } else if (w == ";" && parens == 0) {
                    break;
                }
            }
            if (opensScope || end >= toks.size())
                continue;
            // Function declarations/macro invocations carry
            // parentheses before any initializer.
            if (sawParenTop)
                continue;
            bool immutable = false;
            std::size_t declEnd = assign ? assign : end;
            for (std::size_t k = i; k < declEnd; ++k) {
                const std::string &w = toks[k].text;
                if (w == "const" || w == "constexpr" ||
                    w == "constinit" || w == "consteval" ||
                    w == "operator") {
                    immutable = true;
                    break;
                }
            }
            if (immutable)
                continue;
            // Declarator name = last identifier before '=' / ';'.
            std::size_t nameIdx = 0;
            for (std::size_t k = i; k < declEnd; ++k)
                if (toks[k].kind == Tok::Ident)
                    nameIdx = k;
            bool looksLikeDecl =
                assign ? nameIdx > i
                       : (nameIdx > i && nameIdx + 1 == end);
            if (looksLikeDecl) {
                em.emit(rule, toks[nameIdx].line,
                        "mutable namespace-scope global '" +
                            toks[nameIdx].text +
                            "' in a header; every includer gets its "
                            "own copy (ODR hazard) — make it "
                            "constexpr, or move it into a .cc");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// File collection
// ---------------------------------------------------------------------------

bool
isSourcePath(const std::string &path)
{
    auto ends = [&](const char *suf) {
        std::string s(suf);
        return path.size() >= s.size() &&
               path.compare(path.size() - s.size(), s.size(), s) == 0;
    };
    return ends(".cc") || ends(".cpp") || ends(".cxx") || isHeaderPath(path);
}

} // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> &
ruleList()
{
    return kRules;
}

bool
knownRule(const std::string &name)
{
    for (const RuleInfo &r : kRules)
        if (name == r.name)
            return true;
    return false;
}

std::vector<Diagnostic>
lintBuffer(const std::string &path, const std::string &content,
           const Options &opts)
{
    ScanResult scanRes = scan(content);
    std::vector<Diagnostic> diags;
    Emitter em{path, scanRes, diags};

    RuleScope scope = scopeFor(path, opts);
    if (scope.unorderedIteration)
        checkUnorderedIteration(scanRes.toks, em);
    if (scope.wallclockRand)
        checkWallclockRand(scanRes.toks, em);
    if (scope.bareLock)
        checkBareLock(scanRes.toks, em);
    if (scope.stdoutInLib)
        checkStdoutInLib(scanRes.toks, em);
    if (scope.headerHygiene)
        checkHeaderHygiene(scanRes.toks, scanRes.directives, em);

    for (Diagnostic d : scanRes.suppressionDiags) {
        d.path = path;
        diags.push_back(std::move(d));
    }

    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return diags;
}

std::vector<Diagnostic>
lintPaths(const std::string &root, const std::vector<std::string> &paths,
          const Options &opts, std::vector<std::string> &errors)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    const fs::path rootPath(root.empty() ? "." : root);

    for (const std::string &p : paths) {
        fs::path abs = rootPath / p;
        std::error_code ec;
        if (fs::is_directory(abs, ec)) {
            for (fs::recursive_directory_iterator
                     it(abs, fs::directory_options::skip_permission_denied,
                        ec),
                 endIt;
                 it != endIt; it.increment(ec)) {
                if (ec) {
                    errors.push_back(abs.string() + ": " + ec.message());
                    break;
                }
                if (it->is_regular_file() &&
                    isSourcePath(it->path().string()))
                    files.push_back(
                        fs::relative(it->path(), rootPath).generic_string());
            }
        } else if (fs::is_regular_file(abs, ec)) {
            files.push_back(fs::relative(abs, rootPath).generic_string());
        } else {
            errors.push_back(p + ": not a file or directory under " +
                             rootPath.string());
        }
    }

    // Sorted traversal: diagnostics order is part of the determinism
    // contract this tool exists to defend.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Diagnostic> diags;
    for (const std::string &rel : files) {
        std::ifstream in(rootPath / rel, std::ios::binary);
        if (!in) {
            errors.push_back(rel + ": unreadable");
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::vector<Diagnostic> d = lintBuffer(rel, buf.str(), opts);
        diags.insert(diags.end(), d.begin(), d.end());
    }
    return diags;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream oss;
    oss << d.path << ":" << d.line << ": [" << d.rule << "] " << d.message;
    return oss.str();
}

} // namespace herald::lint
