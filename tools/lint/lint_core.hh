/**
 * @file
 * herald-lint: project-specific determinism & contract static analysis.
 *
 * A lightweight single-pass C++ tokenizer/scanner (no libclang) that
 * enforces the source-level rules backing Herald's determinism
 * contract: schedules and DSE results must be bit-identical across
 * thread counts, reruns, and platforms. The rules are heuristics over
 * the token stream, not a full parse — false positives are expected
 * to be rare and are silenced with a justified suppression:
 *
 *     // herald-lint: allow(<rule>[, <rule>...]): <justification>
 *
 * A suppression covers its own line and the line directly below it,
 * so it can sit at the end of the offending line or on the line
 * above. The justification after the closing parenthesis is
 * mandatory; an allow() without one (or naming an unknown rule) is
 * itself reported under the meta-rule `bad-suppression`.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace herald::lint
{

/** One finding, addressed file:line for editor navigation. */
struct Diagnostic
{
    std::string path;   ///< root-relative path, forward slashes
    std::size_t line = 0;   ///< 1-based
    std::string rule;
    std::string message;
};

/** Scanner knobs. */
struct Options
{
    /**
     * Ignore per-rule path scoping and run every rule on every file.
     * Used by the committed bad-fixture gate and the unit tests,
     * where fixture files live outside the scoped trees.
     */
    bool allPaths = false;
};

/** Static description of one rule, for --list-rules. */
struct RuleInfo
{
    const char *name;
    const char *scope;  ///< machine-readable path scope ("src/", "*", ...)
    const char *description;
};

/** Every shipped rule, in stable order (includes the meta-rule). */
const std::vector<RuleInfo> &ruleList();

/** Whether `name` is a shipped rule (meta-rule included). */
bool knownRule(const std::string &name);

/**
 * Lint one in-memory buffer. `path` is the root-relative path used
 * for rule scoping and in diagnostics; it does not need to exist on
 * disk. Diagnostics come back sorted by (line, rule).
 */
std::vector<Diagnostic> lintBuffer(const std::string &path,
                                   const std::string &content,
                                   const Options &opts = Options());

/**
 * Lint files and directory trees (recursively; *.cc/.cpp/.hh/.h/.hpp)
 * under `root`. Traversal order is sorted, so output is deterministic
 * across platforms and reruns. Unreadable paths are appended to
 * `errors` instead of being silently skipped.
 */
std::vector<Diagnostic> lintPaths(const std::string &root,
                                  const std::vector<std::string> &paths,
                                  const Options &opts,
                                  std::vector<std::string> &errors);

/** Render as "path:line: [rule] message". */
std::string formatDiagnostic(const Diagnostic &d);

} // namespace herald::lint
