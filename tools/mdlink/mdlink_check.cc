/**
 * @file
 * mdlink_check: verify that relative links in Markdown files resolve
 * to real files. CI runs it over README.md and docs/ so a moved or
 * renamed file cannot silently strand the documentation tree.
 *
 * Checked: inline links and images, `[text](target)` / `![alt](t)`.
 *   - external targets (a scheme like https:// or mailto:) are
 *     skipped — network reachability is not a build property;
 *   - pure in-page anchors (#section) are skipped;
 *   - targets that resolve outside --root are skipped: they address
 *     hosting-site routes (e.g. the ../../actions/... CI badge),
 *     which the repository tree cannot validate;
 *   - everything else resolves relative to the linking file (or to
 *     --root when the target starts with '/'), minus any ?query or
 *     #fragment suffix, and must exist as a file or directory.
 * Fenced code blocks and inline code spans are ignored, so literal
 * `[x](y)` examples in documentation do not trip the pass.
 *
 * Usage:
 *   mdlink_check --root DIR PATH...
 * where every PATH (file, or directory scanned recursively for *.md)
 * is interpreted relative to DIR. Exits non-zero listing every broken
 * link as file:line.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace
{

struct BrokenLink
{
    std::string file;
    std::size_t line = 0;
    std::string target;
};

/** Strip inline code spans: `...` becomes spaces, backticks kept. */
std::string
blankCodeSpans(const std::string &line)
{
    std::string out = line;
    bool in_span = false;
    for (char &c : out) {
        if (c == '`')
            in_span = !in_span;
        else if (in_span)
            c = ' ';
    }
    return out;
}

bool
isExternal(const std::string &target)
{
    // A scheme per RFC 3986: ALPHA *(ALPHA / DIGIT / + / - / .) ":".
    // "mailto:x" and "https://x" are external; "a/b.md:" cannot occur
    // because ':' never appears in our relative targets.
    if (target.empty() ||
        !std::isalpha(static_cast<unsigned char>(target[0])))
        return false;
    for (std::size_t i = 1; i < target.size(); ++i) {
        char c = target[i];
        if (c == ':')
            return true;
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '+' && c != '-' && c != '.')
            return false;
    }
    return false;
}

/** Extract link targets from one already-code-blanked line. */
std::vector<std::string>
linkTargets(const std::string &line)
{
    std::vector<std::string> targets;
    for (std::size_t i = 0; i + 1 < line.size(); ++i) {
        if (line[i] != ']' || line[i + 1] != '(')
            continue;
        std::size_t start = i + 2;
        // Targets may contain balanced parentheses (rare but legal);
        // scan to the matching closer.
        int depth = 1;
        std::size_t end = start;
        while (end < line.size() && depth > 0) {
            if (line[end] == '(')
                ++depth;
            else if (line[end] == ')' && --depth == 0)
                break;
            ++end;
        }
        if (depth != 0)
            continue; // unterminated — not a link
        std::string target = line.substr(start, end - start);
        // "[text](target "title")": drop the optional title.
        std::size_t space = target.find(' ');
        if (space != std::string::npos)
            target = target.substr(0, space);
        if (!target.empty())
            targets.push_back(target);
    }
    return targets;
}

void
checkFile(const fs::path &root, const fs::path &file,
          std::vector<BrokenLink> &broken)
{
    std::ifstream in(file);
    if (!in) {
        broken.push_back({file.string(), 0, "<unreadable file>"});
        return;
    }
    std::string line;
    std::size_t lineno = 0;
    bool in_fence = false;
    while (std::getline(in, line)) {
        ++lineno;
        // Fence delimiters toggle; everything inside is literal.
        std::size_t first = line.find_first_not_of(" \t");
        if (first != std::string::npos &&
            (line.compare(first, 3, "```") == 0 ||
             line.compare(first, 3, "~~~") == 0)) {
            in_fence = !in_fence;
            continue;
        }
        if (in_fence)
            continue;
        for (const std::string &raw :
             linkTargets(blankCodeSpans(line))) {
            if (isExternal(raw) || raw[0] == '#')
                continue;
            std::string target = raw;
            std::size_t cut = target.find_first_of("#?");
            if (cut != std::string::npos)
                target = target.substr(0, cut);
            if (target.empty())
                continue;
            fs::path resolved =
                target[0] == '/'
                    ? root / target.substr(1)
                    : file.parent_path() / target;
            std::error_code ec;
            // String-prefix containment on normalized absolute
            // paths ("--root ." absolutizes to ".../repo/.", whose
            // trailing empty element would break element-wise
            // prefix iteration).
            std::string norm = fs::absolute(resolved, ec)
                                   .lexically_normal()
                                   .generic_string();
            std::string root_norm = (fs::absolute(root, ec) / "")
                                        .lexically_normal()
                                        .generic_string();
            if (norm.compare(0, root_norm.size(), root_norm) != 0)
                continue; // escapes --root: not ours to validate
            if (!fs::exists(resolved, ec))
                broken.push_back({file.string(), lineno, raw});
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "usage: %s --root DIR PATH...\n", argv[0]);
            return 2;
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (root.empty() || paths.empty()) {
        std::fprintf(stderr, "usage: %s --root DIR PATH...\n",
                     argv[0]);
        return 2;
    }

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        fs::path abs = root / p;
        std::error_code ec;
        if (fs::is_directory(abs, ec)) {
            for (const fs::directory_entry &e :
                 fs::recursive_directory_iterator(abs)) {
                if (e.is_regular_file() &&
                    e.path().extension() == ".md")
                    files.push_back(e.path());
            }
        } else if (fs::is_regular_file(abs, ec)) {
            files.push_back(abs);
        } else {
            std::fprintf(stderr, "mdlink_check: no such path: %s\n",
                         abs.string().c_str());
            return 2;
        }
    }
    // Directory iteration order is filesystem-dependent; sort so the
    // report (and any future fixture diffing) is deterministic.
    std::sort(files.begin(), files.end());

    std::vector<BrokenLink> broken;
    for (const fs::path &f : files)
        checkFile(root, f, broken);

    if (!broken.empty()) {
        for (const BrokenLink &b : broken)
            std::fprintf(stderr, "%s:%zu: broken link: %s\n",
                         b.file.c_str(), b.line, b.target.c_str());
        std::fprintf(stderr,
                     "mdlink_check: %zu broken link(s) across %zu "
                     "file(s)\n",
                     broken.size(), files.size());
        return 1;
    }
    std::printf("mdlink_check: %zu file(s) clean\n", files.size());
    return 0;
}
